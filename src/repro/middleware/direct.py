"""Direct (wired) HTTP access presented as a MiddlewareSession.

Electronic-commerce clients (Figure 1's desktop computers) reach the
host over plain HTTP with no middleware.  Wrapping that access in the
:class:`MiddlewareSession` interface keeps application code identical
across EC and MC systems — the paper's program/data-independence
requirement, demonstrated rather than asserted.
"""

from __future__ import annotations

from typing import Optional
from urllib.parse import urlencode

from ..net.dns import NameRegistry
from ..net.node import Node
from ..net.tcp import TCPStack
from ..obs import ctx_of, end_span, start_span
from ..sim import Counter, Event
from ..web.client import HTTPClient
from .base import (
    MiddlewareResponse,
    MiddlewareSession,
    RequestTimeout,
    split_url,
)

__all__ = ["DirectHTTPSession"]

DEFAULT_HTTP_TIMEOUT = 30.0


class DirectHTTPSession(MiddlewareSession):
    """No-middleware client access for wired (EC) clients."""

    middleware_name = "direct-http"
    session_model = "request-response"

    def __init__(self, node: Node, registry: NameRegistry,
                 tcp: Optional[TCPStack] = None):
        self.node = node
        self.sim = node.sim
        self.registry = registry
        self.http = HTTPClient(node, tcp=tcp)
        self.stats = Counter()

    def get(self, url: str, trace=None,
            timeout: Optional[float] = None) -> Event:
        return self._fetch("GET", url, None, trace=trace, timeout=timeout)

    def post(self, url: str, form: dict, trace=None,
             timeout: Optional[float] = None) -> Event:
        return self._fetch("POST", url, urlencode(form).encode(),
                           trace=trace, timeout=timeout)

    def _fetch(self, method: str, url: str, body, trace=None,
               timeout: Optional[float] = None) -> Event:
        result = self.sim.event()
        span = None
        if trace is not None:
            span = start_span(self.sim, "http.request", "wired",
                              parent=trace, url=url)
        # An explicit per-request timeout reaches HTTPClient.request and
        # surfaces as RequestTimeout; the legacy default keeps the old
        # 504-response shape for callers that never opted in.
        explicit = timeout is not None
        http_timeout = timeout if explicit else DEFAULT_HTTP_TIMEOUT

        def go(env):
            try:
                try:
                    host, path = split_url(url)
                except ValueError as exc:
                    result.fail(exc)
                    return
                origin = self.registry.lookup(host)
                if origin is None:
                    result.succeed(MiddlewareResponse(
                        status=502, content_type="text/plain",
                        body=f"cannot resolve {host}".encode()))
                    return
                self.stats.incr("requests")
                if method == "POST":
                    response = yield self.http.post(origin, path, body,
                                                    timeout=http_timeout,
                                                    trace=ctx_of(span))
                else:
                    response = yield self.http.get(origin, path,
                                                   timeout=http_timeout,
                                                   trace=ctx_of(span))
                if response is None:
                    if explicit:
                        self.stats.incr("request_timeouts")
                        result.fail(RequestTimeout(
                            f"no HTTP response within {http_timeout:g}s "
                            f"({url})"))
                        return
                    result.succeed(MiddlewareResponse(
                        status=504, content_type="text/plain",
                        body=b"timeout"))
                    return
                meta = {"delivered_bytes": len(response.body)}
                retry_after = response.headers.get("retry-after")
                if retry_after is not None:
                    meta["retry_after"] = float(retry_after)
                result.succeed(MiddlewareResponse(
                    status=response.status,
                    content_type=response.content_type,
                    body=response.body,
                    meta=meta,
                ))
            finally:
                end_span(self.sim, span)

        self.sim.spawn(go(self.sim), name="direct-http")
        return result

    def close(self) -> None:
        pass
