"""Central metrics registry.

Subsumes the ad-hoc collectors of :mod:`repro.sim.monitor` behind one
named namespace: components ask the registry for a counter, a time
series or a latency recorder by dotted name, and benchmarks read one
aggregated snapshot instead of fishing collectors out of a dozen
objects.  The monitor primitives themselves are re-exported here so
``repro.obs`` is the one import observability code needs.
"""

from __future__ import annotations

from typing import Optional

from ..sim.monitor import (
    Counter,
    LatencyRecorder,
    StatSummary,
    TimeSeries,
    Trace,
)

__all__ = [
    "Gauge",
    "MetricsRegistry",
    "Counter",
    "LatencyRecorder",
    "StatSummary",
    "TimeSeries",
    "Trace",
]


class Gauge:
    """A live instantaneous value (queue depth, pool size, backlog).

    Unlike a :class:`Counter` (monotone accumulation) or a
    :class:`TimeSeries` (retained history), a gauge holds only the
    current reading plus its high-water mark — cheap enough to update
    on every queue mutation, which is what lets health checks and
    autoscalers read *live* values instead of poking component
    internals after the run.
    """

    __slots__ = ("value", "peak", "updates")

    def __init__(self):
        self.value = 0.0
        self.peak = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value
        self.updates += 1

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def as_dict(self) -> dict:
        return {"value": self.value, "peak": self.peak,
                "updates": self.updates}


class MetricsRegistry:
    """Named, get-or-create access to the monitor collectors."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._series: dict[str, TimeSeries] = {}
        self._latencies: dict[str, LatencyRecorder] = {}
        self._gauges: dict[str, Gauge] = {}

    # -- get-or-create ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def timeseries(self, name: str) -> TimeSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(name)
        return series

    def latency(self, name: str) -> LatencyRecorder:
        recorder = self._latencies.get(name)
        if recorder is None:
            recorder = self._latencies[name] = LatencyRecorder()
        return recorder

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    # -- convenience recording -------------------------------------------
    def incr(self, name: str, key: str, amount: int = 1) -> None:
        self.counter(name).incr(key, amount)

    def record(self, name: str, time: float, value: float) -> None:
        self.timeseries(name).record(time, value)

    # -- aggregation -----------------------------------------------------
    def summary(self, name: str) -> Optional[StatSummary]:
        """StatSummary for a latency recorder, None when unknown."""
        recorder = self._latencies.get(name)
        if recorder is None:
            return None
        return recorder.summary()

    def names(self) -> list[str]:
        return sorted(set(self._counters) | set(self._series)
                      | set(self._latencies) | set(self._gauges))

    def snapshot(self) -> dict:
        """One JSON-friendly dict of everything the registry holds."""
        out: dict = {"counters": {}, "series": {}, "latencies": {},
                     "gauges": {}}
        for name, gauge in sorted(self._gauges.items()):
            out["gauges"][name] = gauge.as_dict()
        for name, counter in sorted(self._counters.items()):
            out["counters"][name] = counter.as_dict()
        for name, series in sorted(self._series.items()):
            out["series"][name] = {
                "count": len(series),
                "mean": series.mean(),
                "time_weighted_mean": series.time_weighted_mean(),
            }
        for name, recorder in sorted(self._latencies.items()):
            summary = recorder.summary()
            out["latencies"][name] = {
                "count": summary.count,
                "mean": summary.mean,
                "stdev": summary.stdev,
                "p50": summary.p50,
                "p95": summary.p95,
                "p99": summary.p99,
                "min": summary.minimum,
                "max": summary.maximum,
            }
        return out
