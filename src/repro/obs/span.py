"""Hierarchical span tracing over the simulation clock.

A :class:`Span` is one timed operation in one component (a render, a
gateway translation, a link transmission, a database query); a
:class:`Tracer` collects them.  All timestamps come from
``Simulator.now`` — the tracer never touches the wall clock — and spans
never consume virtual time, so installing a tracer cannot change what
the simulation computes, only what it reports.

The tracer is installed on ``Simulator.tracer`` (``None`` by default).
Instrumentation sites go through :func:`start_span` / :func:`end_span`,
which are no-ops while no tracer is installed — the disabled path is a
single attribute check, keeping the default run byte-identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Union

from .context import TraceContext

__all__ = [
    "Span",
    "Tracer",
    "install_tracer",
    "start_span",
    "end_span",
    "ctx_of",
]

ParentLike = Union["Span", TraceContext, None]


@dataclass(slots=True)
class Span:
    """One timed, named, layered operation inside a trace.

    Slotted: a traced 500-user benchmark allocates hundreds of
    thousands of spans, so they carry no per-instance ``__dict__``.
    """

    name: str
    layer: str
    trace_id: int
    span_id: int
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    attrs: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def context(self) -> TraceContext:
        """The context a child (possibly in another component) parents to."""
        return TraceContext(self.trace_id, self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        when = (f"{self.start:.6f}..{self.end:.6f}"
                if self.end is not None else f"{self.start:.6f}..open")
        return f"<Span {self.name} [{self.layer}] t{self.trace_id} {when}>"


class Tracer:
    """Collects spans for one simulator; ids are tracer-local and
    deterministic (no module-level counters — two identical runs produce
    identical traces)."""

    def __init__(self, sim, max_spans: Optional[int] = None):
        self.sim = sim
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self.dropped = 0

    def install(self) -> "Tracer":
        """Attach this tracer to its simulator (``sim.tracer``)."""
        self.sim.tracer = self
        return self

    # -- recording -------------------------------------------------------
    def start(self, name: str, layer: str, parent: ParentLike = None,
              **attrs: Any) -> Span:
        """Open a span at ``sim.now``; parent may be a Span, a
        TraceContext (propagated from another component) or None (a new
        root trace)."""
        if isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif isinstance(parent, TraceContext):
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = next(self._trace_ids), None
        span = Span(
            name=name,
            layer=layer,
            trace_id=trace_id,
            span_id=next(self._span_ids),
            parent_id=parent_id,
            start=self.sim.now,
            attrs=dict(attrs),
        )
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped += 1
        else:
            self.spans.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close a span at ``sim.now`` (idempotent)."""
        if span.end is None:
            span.end = self.sim.now
        if attrs:
            span.attrs.update(attrs)
        return span

    # -- queries ---------------------------------------------------------
    def for_trace(self, trace_id: int) -> list[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def __len__(self) -> int:
        return len(self.spans)


def install_tracer(sim, max_spans: Optional[int] = None) -> Tracer:
    """Create a :class:`Tracer` for ``sim`` and install it."""
    return Tracer(sim, max_spans=max_spans).install()


# ------------------------------------------------------- nil-cost helpers
def start_span(sim, name: str, layer: str, parent: ParentLike = None,
               **attrs: Any) -> Optional[Span]:
    """Open a span if ``sim`` has a tracer installed; else None."""
    tracer = sim.tracer
    if tracer is None:
        return None
    return tracer.start(name, layer, parent=parent, **attrs)


def end_span(sim, span: Optional[Span], **attrs: Any) -> None:
    """Close ``span`` if it exists (no-op for the untraced path)."""
    if span is None:
        return
    tracer = sim.tracer
    if tracer is not None:
        tracer.end(span, **attrs)


def ctx_of(span: Optional[Span]) -> Optional[TraceContext]:
    """The span's propagatable context, or None when untraced."""
    return span.context() if span is not None else None
