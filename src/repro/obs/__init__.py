"""Observability for the m-commerce simulator.

Three pieces, all zero-cost until installed:

* **Spans** (:mod:`repro.obs.span`): hierarchical timed operations over
  the simulation clock, stitched across components by an explicit
  :class:`TraceContext` carried on frames, headers and packets.
* **Metrics** (:mod:`repro.obs.metrics`): a named registry subsuming
  the :mod:`repro.sim.monitor` collectors.
* **Kernel profiling** (:mod:`repro.obs.profile`): event-loop counters
  behind a nil-cost default.

:mod:`repro.obs.report` turns a trace into a per-layer latency
breakdown whose sum equals the end-to-end latency exactly.
"""

from __future__ import annotations

from .context import TRACE_HEADER, TRACE_KEY, TraceContext
from .metrics import (
    Counter,
    Gauge,
    LatencyRecorder,
    MetricsRegistry,
    StatSummary,
    TimeSeries,
    Trace,
)
from .profile import KernelProfiler, install_profiler
from .report import (
    LAYER_ORDER,
    format_breakdown,
    layer_breakdown,
    render_breakdown_table,
    render_trace_json,
    trace_to_dict,
)
from .span import Span, Tracer, ctx_of, end_span, install_tracer, start_span

__all__ = [
    "TraceContext",
    "TRACE_HEADER",
    "TRACE_KEY",
    "Span",
    "Tracer",
    "install_tracer",
    "start_span",
    "end_span",
    "ctx_of",
    "MetricsRegistry",
    "Gauge",
    "Counter",
    "LatencyRecorder",
    "StatSummary",
    "TimeSeries",
    "Trace",
    "KernelProfiler",
    "install_profiler",
    "LAYER_ORDER",
    "layer_breakdown",
    "format_breakdown",
    "render_breakdown_table",
    "trace_to_dict",
    "render_trace_json",
]
