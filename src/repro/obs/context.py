"""Trace context: the identity a transaction carries across components.

A :class:`TraceContext` is the (trace_id, span_id) pair that rides on
whatever the layer below already transports — a ``"trace"`` key in the
WSP/clipping/database frame dicts, an ``x-trace`` header on HTTP
requests, and a ``trace`` field on :class:`~repro.net.packet.Packet` —
so one end-to-end transaction can be reassembled from spans recorded in
six different components.  Carrying a context is observational only: it
never changes scheduling, and (apart from the wire bytes of the header
or frame key when tracing is enabled) never changes the system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["TraceContext", "TRACE_HEADER", "TRACE_KEY"]

# Header name used on HTTPRequest propagation (lower-cased by HTTPRequest).
TRACE_HEADER = "x-trace"
# Dict key used on frame-dict propagation (WSP, clipping, DB protocol).
TRACE_KEY = "trace"


@dataclass(frozen=True)
class TraceContext:
    """Immutable (trace_id, span_id) pair identifying a parent span."""

    trace_id: int
    span_id: int

    # -- frame-dict carriage (JSON-encodable) ----------------------------
    def to_wire(self) -> dict:
        return {"t": self.trace_id, "s": self.span_id}

    @staticmethod
    def from_wire(obj: Any) -> Optional["TraceContext"]:
        """Parse a frame-dict value; None for anything malformed."""
        if not isinstance(obj, dict):
            return None
        trace_id, span_id = obj.get("t"), obj.get("s")
        if isinstance(trace_id, int) and isinstance(span_id, int):
            return TraceContext(trace_id, span_id)
        return None

    # -- header carriage -------------------------------------------------
    def to_header(self) -> str:
        return f"{self.trace_id}-{self.span_id}"

    @staticmethod
    def from_header(value: str) -> Optional["TraceContext"]:
        """Parse an ``x-trace`` header value; None for anything malformed."""
        trace_part, sep, span_part = str(value).partition("-")
        if not sep:
            return None
        try:
            return TraceContext(int(trace_part), int(span_part))
        except ValueError:
            return None
