"""Per-layer latency breakdowns and trace export.

The breakdown answers the question the paper's six-component pipeline
begs: *where did this transaction's time go?*  Attribution is by
timeline sweep: within the root span's interval, every instant is
charged to the layer of the **deepest** span covering it (ties broken
by latest start, then highest span id — deterministic).  Because every
instant is charged to exactly one layer, the per-layer seconds sum to
the root span's duration *exactly*, which is also the transaction's
end-to-end latency — the consistency property the trace CLI asserts.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from .span import Span, Tracer

__all__ = [
    "LAYER_ORDER",
    "layer_breakdown",
    "format_breakdown",
    "render_breakdown_table",
    "trace_to_dict",
    "render_trace_json",
]

# Presentation order: the paper's pipeline, device -> host, then app glue.
LAYER_ORDER = ["device", "middleware", "wireless", "wired", "web", "db",
               "app"]

# Unambiguous short labels for one-line cells ("wireless"/"wired" both
# truncate to "wir", so a plain prefix will not do).
_LAYER_ABBREV = {"device": "dev", "middleware": "mid", "wireless": "wls",
                 "wired": "wrd", "web": "web", "db": "db", "app": "app"}


def _span_depths(spans: list[Span]) -> dict[int, int]:
    """Depth of every span (root = 0) via parent chains.

    Spans whose parent is not in the trace (e.g. the parent was dropped
    by a max_spans bound) are treated as depth 0.
    """
    by_id = {s.span_id: s for s in spans}
    depths: dict[int, int] = {}

    def depth(span: Span) -> int:
        cached = depths.get(span.span_id)
        if cached is not None:
            return cached
        seen: list[int] = []
        node, hops = span, 0
        while node.parent_id is not None and node.parent_id in by_id:
            cached = depths.get(node.span_id)
            if cached is not None:
                hops += cached
                break
            seen.append(node.span_id)
            node = by_id[node.parent_id]
            hops += 1
        base = hops
        for offset, span_id in enumerate(seen):
            depths[span_id] = base - offset
        depths.setdefault(span.span_id, base)
        return depths[span.span_id]

    for span in spans:
        depth(span)
    return depths


def layer_breakdown(tracer_or_spans, trace_id: Optional[int] = None,
                    root: Optional[Span] = None) -> dict[str, float]:
    """Seconds per layer for one trace; values sum to the root duration.

    ``tracer_or_spans`` is a :class:`Tracer` or an iterable of spans;
    ``trace_id`` selects the trace (defaulting to the root's, or to the
    single trace present).  Open spans are clipped to the root interval.
    """
    if isinstance(tracer_or_spans, Tracer):
        spans = list(tracer_or_spans.spans)
    else:
        spans = list(tracer_or_spans)
    if root is not None and trace_id is None:
        trace_id = root.trace_id
    if trace_id is not None:
        spans = [s for s in spans if s.trace_id == trace_id]
    if not spans:
        return {}
    if root is None:
        roots = [s for s in spans if s.parent_id is None]
        if not roots:
            raise ValueError("trace has no root span")
        root = roots[0]
    if root.end is None:
        raise ValueError("root span is still open")

    lo, hi = root.start, root.end
    if hi <= lo:
        return {root.layer: 0.0}
    depths = _span_depths(spans)

    # Clip every span to the root window; open spans end at the window.
    clipped: list[tuple[float, float, int, Span]] = []
    for span in spans:
        start = max(span.start, lo)
        end = min(span.end if span.end is not None else hi, hi)
        if end > start:
            clipped.append((start, end, depths[span.span_id], span))

    boundaries = sorted({t for start, end, _, _ in clipped
                         for t in (start, end)})
    totals: dict[str, float] = {}
    for left, right in zip(boundaries, boundaries[1:]):
        covering = [
            (depth, span.start, span.span_id, span)
            for start, end, depth, span in clipped
            if start <= left and end >= right
        ]
        # Deepest wins; ties go to the latest-started, then newest span.
        _, _, _, winner = max(covering)
        totals[winner.layer] = totals.get(winner.layer, 0.0) + (right - left)
    return totals


def format_breakdown(breakdown: dict[str, float],
                     precision: int = 3) -> str:
    """Compact one-line rendering, e.g. for a benchmark table cell."""
    parts = []
    for layer in LAYER_ORDER:
        if layer in breakdown:
            label = _LAYER_ABBREV.get(layer, layer)
            parts.append(f"{label}={breakdown[layer]:.{precision}f}")
    for layer in sorted(set(breakdown) - set(LAYER_ORDER)):
        parts.append(f"{layer}={breakdown[layer]:.{precision}f}")
    return " ".join(parts)


def render_breakdown_table(breakdown: dict[str, float],
                           total: Optional[float] = None,
                           title: str = "per-layer latency breakdown") -> str:
    """An aligned text table with per-layer share of the total."""
    if total is None:
        total = sum(breakdown.values())
    lines = [title, "-" * len(title),
             f"{'layer':<12}{'seconds':>10}  {'share':>6}"]
    ordered = [layer for layer in LAYER_ORDER if layer in breakdown]
    ordered += sorted(set(breakdown) - set(LAYER_ORDER))
    for layer in ordered:
        seconds = breakdown[layer]
        share = (100.0 * seconds / total) if total > 0 else 0.0
        lines.append(f"{layer:<12}{seconds:>10.4f}  {share:>5.1f}%")
    lines.append(f"{'total':<12}{sum(breakdown.values()):>10.4f}")
    return "\n".join(lines)


def _span_dict(span: Span) -> dict:
    return {
        "name": span.name,
        "layer": span.layer,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": span.start,
        "end": span.end,
        "duration": (span.end - span.start
                     if span.end is not None else None),
        "attrs": span.attrs,
    }


def trace_to_dict(tracer_or_spans, trace_id: Optional[int] = None) -> dict:
    """JSON-ready export of one trace (or of every span when no id)."""
    if isinstance(tracer_or_spans, Tracer):
        spans: Iterable[Span] = tracer_or_spans.spans
    else:
        spans = tracer_or_spans
    selected = [s for s in spans
                if trace_id is None or s.trace_id == trace_id]
    out: dict = {"trace_id": trace_id, "spans": [_span_dict(s)
                                                 for s in selected]}
    roots = [s for s in selected if s.parent_id is None and s.end is not None]
    if len(roots) == 1:
        breakdown = layer_breakdown(selected, root=roots[0])
        out["root"] = _span_dict(roots[0])
        out["breakdown"] = breakdown
        out["breakdown_total"] = sum(breakdown.values())
    return out


def render_trace_json(tracer_or_spans,
                      trace_id: Optional[int] = None) -> str:
    return json.dumps(trace_to_dict(tracer_or_spans, trace_id=trace_id),
                      indent=2, sort_keys=True)
