"""Kernel profiling: what the event loop itself is doing.

A :class:`KernelProfiler` hooks :meth:`Simulator.step` (events
processed, queue depth over time) and :meth:`Process._resume`
(per-process-name resume counts).  The hooks are behind a nil-cost
default: the kernel carries a ``_profiler`` attribute that is ``None``
unless a profiler is installed, and the only cost of the disabled path
is one ``is None`` check per step.
"""

from __future__ import annotations

from ..sim.monitor import TimeSeries

__all__ = ["KernelProfiler", "install_profiler"]


class KernelProfiler:
    """Counts kernel work; install with :func:`install_profiler`."""

    def __init__(self, queue_sample_every: int = 1):
        if queue_sample_every < 1:
            raise ValueError("queue_sample_every must be >= 1")
        self.queue_sample_every = queue_sample_every
        self.events_processed = 0
        self.queue_depth = TimeSeries("kernel.queue_depth")
        self.resumes: dict[str, int] = {}
        self.events_by_type: dict[str, int] = {}

    # -- kernel hooks ----------------------------------------------------
    def on_event(self, now: float, event, queue_depth: int) -> None:
        """Called by Simulator.step() for every processed event."""
        self.events_processed += 1
        kind = type(event).__name__
        self.events_by_type[kind] = self.events_by_type.get(kind, 0) + 1
        if self.events_processed % self.queue_sample_every == 0:
            self.queue_depth.record(now, float(queue_depth))

    def on_resume(self, process) -> None:
        """Called by Process._resume for every process wake-up."""
        name = process.name
        self.resumes[name] = self.resumes.get(name, 0) + 1

    # -- reporting -------------------------------------------------------
    def top_resumed(self, n: int = 10) -> list[tuple[str, int]]:
        return sorted(self.resumes.items(),
                      key=lambda kv: (-kv[1], kv[0]))[:n]

    def summary(self) -> dict:
        return {
            "events_processed": self.events_processed,
            "events_by_type": dict(sorted(self.events_by_type.items())),
            "mean_queue_depth": self.queue_depth.time_weighted_mean(),
            "max_queue_depth": max(self.queue_depth.values, default=0.0),
            "process_resumes": dict(sorted(self.resumes.items())),
        }


def install_profiler(sim, queue_sample_every: int = 1) -> KernelProfiler:
    """Attach a fresh profiler to ``sim`` and return it."""
    profiler = KernelProfiler(queue_sample_every=queue_sample_every)
    sim._profiler = profiler
    return profiler
