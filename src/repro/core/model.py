"""The system-model graph and its validation against Figures 1 and 2.

A :class:`SystemModel` holds instantiated components and typed edges
(association / bidirectional data-control flow).  ``validate_ec()`` and
``validate_mc()`` check a model against the reference topologies the
paper draws: which components must exist, which are optional, and which
data-flow chain must connect users to host computers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .components import (
    Component,
    ComponentKind,
    EC_COMPONENTS,
    EDGE_ASSOCIATION,
    EDGE_DATA_FLOW,
    MC_COMPONENTS,
    MC_OPTIONAL_COMPONENTS,
)

__all__ = ["Edge", "SystemModel", "ValidationReport"]


@dataclass(frozen=True)
class Edge:
    source: str   # component name
    target: str
    kind: str     # EDGE_ASSOCIATION | EDGE_DATA_FLOW

    def __post_init__(self):
        if self.kind not in (EDGE_ASSOCIATION, EDGE_DATA_FLOW):
            raise ValueError(f"unknown edge kind {self.kind!r}")


@dataclass
class ValidationReport:
    """The outcome of validating a model against a reference figure."""

    figure: str
    violations: list[str] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.valid


# The data/control-flow chains of the two figures, expressed as the
# sequence of component kinds a user request traverses.
EC_FLOW_CHAIN = (
    ComponentKind.USERS,
    ComponentKind.CLIENT_COMPUTERS,
    ComponentKind.WIRED_NETWORKS,
    ComponentKind.HOST_COMPUTERS,
)

MC_FLOW_CHAIN = (
    ComponentKind.USERS,
    ComponentKind.MOBILE_STATIONS,
    ComponentKind.WIRELESS_NETWORKS,
    ComponentKind.WIRED_NETWORKS,
    ComponentKind.HOST_COMPUTERS,
)


class SystemModel:
    """Instantiated components plus the figure's edges."""

    def __init__(self, name: str = "system"):
        self.name = name
        self._components: dict[str, Component] = {}
        self._edges: list[Edge] = []

    # -- construction -----------------------------------------------------
    def add(self, component: Component) -> Component:
        if component.name in self._components:
            raise ValueError(f"duplicate component name {component.name!r}")
        self._components[component.name] = component
        return component

    def connect(self, source: str, target: str,
                kind: str = EDGE_DATA_FLOW) -> Edge:
        for name in (source, target):
            if name not in self._components:
                raise KeyError(f"unknown component {name!r}")
        edge = Edge(source, target, kind)
        self._edges.append(edge)
        return edge

    # -- inspection ---------------------------------------------------------
    def component(self, name: str) -> Component:
        return self._components[name]

    def components(self, kind: Optional[str] = None) -> list[Component]:
        if kind is None:
            return list(self._components.values())
        return [c for c in self._components.values() if c.kind == kind]

    def edges(self, kind: Optional[str] = None) -> list[Edge]:
        if kind is None:
            return list(self._edges)
        return [e for e in self._edges if e.kind == kind]

    def has_kind(self, kind: str) -> bool:
        return bool(self.components(kind))

    def neighbours(self, name: str, kind: Optional[str] = None) -> list[str]:
        """Components connected to ``name`` (data flow is bidirectional)."""
        out = []
        for edge in self._edges:
            if kind is not None and edge.kind != kind:
                continue
            if edge.source == name:
                out.append(edge.target)
            elif edge.target == name:
                out.append(edge.source)
        return out

    def dangling_edges(self) -> list[Edge]:
        """Edges whose source or target names no known component."""
        return [e for e in self._edges
                if e.source not in self._components
                or e.target not in self._components]

    def unreachable_components(self, start_kind: str) -> list[str]:
        """Component names not reachable from any ``start_kind`` component.

        Traverses both association and data-flow edges in both
        directions; used by the static model checker to find orphaned
        hosts/stations before anything runs.
        """
        frontier = [c.name for c in self.components(start_kind)]
        seen = set(frontier)
        while frontier:
            name = frontier.pop()
            for neighbour in self.neighbours(name):
                if neighbour in self._components and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return sorted(set(self._components) - seen)

    def flow_path_exists(self, chain: tuple) -> bool:
        """Is there a data-flow path visiting the kinds of ``chain`` in order?"""
        frontier = [c.name for c in self.components(chain[0])]
        for next_kind in chain[1:]:
            next_frontier = []
            for name in frontier:
                for neighbour in self.neighbours(name, EDGE_DATA_FLOW):
                    # Dangling edges must not crash a structural check;
                    # the model checker reports them separately.
                    known = self._components.get(neighbour)
                    if known is not None and known.kind == next_kind:
                        next_frontier.append(neighbour)
            if not next_frontier:
                return False
            frontier = next_frontier
        return True

    # -- validation -----------------------------------------------------------
    def validate_ec(self) -> ValidationReport:
        """Check this model against Figure 1's EC reference structure."""
        report = ValidationReport(figure="Figure 1 (EC system structure)")
        self._check_kinds(report, EC_COMPONENTS, optional=frozenset())
        self._check_host_internals(report)
        if self.has_kind(ComponentKind.WIRELESS_NETWORKS):
            report.violations.append(
                "EC systems have no wireless networks component"
            )
        if not self.flow_path_exists(EC_FLOW_CHAIN):
            report.violations.append(
                "no data/control-flow path users -> client computers -> "
                "wired networks -> host computers"
            )
        return report

    def validate_mc(self) -> ValidationReport:
        """Check this model against Figure 2's MC reference structure."""
        report = ValidationReport(figure="Figure 2 (MC system structure)")
        self._check_kinds(report, MC_COMPONENTS,
                          optional=MC_OPTIONAL_COMPONENTS)
        self._check_host_internals(report)
        if not self.flow_path_exists(MC_FLOW_CHAIN):
            report.violations.append(
                "no data/control-flow path users -> mobile stations -> "
                "wireless networks -> wired networks -> host computers"
            )
        # Applications associate with both ends of the system (Figure 2
        # draws MC applications above, associated with stations and hosts).
        for app in self.components(ComponentKind.APPLICATIONS):
            linked_kinds = {
                self._components[n].kind
                for n in self.neighbours(app.name)
            }
            if ComponentKind.HOST_COMPUTERS not in linked_kinds:
                report.violations.append(
                    f"application {app.name!r} is not associated with any "
                    "host computer"
                )
        return report

    def _check_kinds(self, report: ValidationReport, required: tuple,
                     optional: frozenset) -> None:
        for kind in required:
            if kind in optional:
                continue
            if not self.has_kind(kind):
                report.violations.append(f"missing component kind: {kind}")

    def _check_host_internals(self, report: ValidationReport) -> None:
        """Hosts must contain web servers, DB servers and app programs (§7)."""
        if not self.has_kind(ComponentKind.HOST_COMPUTERS):
            return
        for kind in (ComponentKind.WEB_SERVERS,
                     ComponentKind.DATABASE_SERVERS,
                     ComponentKind.APPLICATION_PROGRAMS):
            if not self.has_kind(kind):
                report.violations.append(
                    f"host computers lack required part: {kind}"
                )
