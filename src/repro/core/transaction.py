"""The end-to-end mobile commerce transaction engine.

Requirement 1 of §1.1: "allow end users to perform mobile commerce
transactions easily, in a timely manner, and ubiquitously."  The engine
runs an application *flow* (a generator using a station's middleware
session and browser), measures it wall-to-wall, charges device-side
rendering to the station hardware, and produces a
:class:`TransactionRecord` the benchmarks aggregate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..middleware import MiddlewareResponse, RequestTimeout
from ..obs import ctx_of, end_span, start_span
from ..sim import Event, Interrupt, SimulationError, Simulator

__all__ = ["TransactionRecord", "TransactionContext", "TransactionEngine"]

_txn_ids = itertools.count(1)

# Transport failures a retry policy may absorb: the request never got a
# definitive answer, so trying again is safe for idempotent flows.
TRANSIENT_ERRORS = (RequestTimeout, ConnectionError)


@dataclass
class TransactionRecord:
    """The measured outcome of one end-to-end transaction."""

    txn_id: int
    flow_name: str
    client_name: str
    started_at: float
    finished_at: float = 0.0
    ok: bool = False
    error: str = ""
    result: Any = None
    requests: int = 0
    bytes_received: int = 0
    render_seconds: float = 0.0
    retries: int = 0
    # 503 responses observed across all attempts: admission control
    # (gateway watermark or web-server shedding) rejected the request.
    # Lets benchmarks split "shed by design" from other failures.
    shed_503s: int = 0
    steps: list[str] = field(default_factory=list)
    # Id of this transaction's root span when a tracer was installed.
    trace_id: Optional[int] = None

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at


class TransactionContext:
    """What a flow sees: fetch/submit/render primitives plus bookkeeping."""

    def __init__(self, engine: "TransactionEngine", handle,
                 record: TransactionRecord, trace=None):
        self.engine = engine
        self.handle = handle
        self.record = record
        self.system = engine.system
        # TraceContext of the transaction's root span (None untraced);
        # every middleware call and render parents to it.
        self.trace = trace

    # -- network I/O ------------------------------------------------------
    def get(self, path: str, timeout: Optional[float] = None):
        """Generator: GET a host path through the middleware session.

        ``timeout`` caps each attempt in sim-seconds (falling back to
        the engine's ``request_timeout``, then the retry policy's
        ``attempt_timeout``).  When the engine carries a retry policy,
        transient failures — :class:`RequestTimeout`,
        ``ConnectionError`` and retryable 5xx statuses — are retried
        with exponential backoff on the sim clock, honouring any
        ``Retry-After`` hint the server shed with.
        """
        return (yield from self._call("get", path, None, timeout))

    def post(self, path: str, form: dict, timeout: Optional[float] = None):
        return (yield from self._call("post", path, form, timeout))

    def _call(self, method: str, path: str, form, timeout: Optional[float]):
        policy = self.engine.retry
        deadline = timeout
        if deadline is None:
            deadline = self.engine.request_timeout
        if deadline is None and policy is not None:
            deadline = policy.attempt_timeout
        url = self.system.url(path)
        session = self.handle.session
        attempts = policy.max_attempts if policy is not None else 1
        attempt = 1
        while True:
            try:
                if deadline is None:
                    # Legacy call shape: keep duck-typed sessions that
                    # predate the timeout keyword working untouched.
                    if method == "get":
                        response = yield session.get(url, trace=self.trace)
                    else:
                        response = yield session.post(url, form,
                                                      trace=self.trace)
                elif method == "get":
                    response = yield session.get(url, trace=self.trace,
                                                 timeout=deadline)
                else:
                    response = yield session.post(url, form, trace=self.trace,
                                                  timeout=deadline)
            except TRANSIENT_ERRORS as exc:
                if attempt >= attempts:
                    raise
                delay = policy.backoff(attempt)
                self.record.retries += 1
                self.record.steps.append(
                    f"{path} !! {type(exc).__name__}; "
                    f"retry {attempt} in {delay:.3f}s")
                yield self.engine.sim.timeout(delay)
                attempt += 1
                continue
            if (policy is not None and attempt < attempts
                    and policy.retryable_status(response.status)):
                if response.status == 503:
                    self.record.shed_503s += 1
                delay = policy.backoff(attempt)
                hint = getattr(response, "meta", {}).get("retry_after")
                if hint is not None:
                    delay = max(delay, float(hint))
                self.record.retries += 1
                self.record.steps.append(
                    f"{path} -> {response.status}; "
                    f"retry {attempt} in {delay:.3f}s")
                yield self.engine.sim.timeout(delay)
                attempt += 1
                continue
            self._account(path, response)
            return response

    def _account(self, path: str, response: MiddlewareResponse) -> None:
        self.record.requests += 1
        if response.status == 503:
            self.record.shed_503s += 1
        self.record.bytes_received += len(response.body)
        self.record.steps.append(
            f"{path} -> {response.status} ({len(response.body)}B)"
        )

    # -- device-side work ----------------------------------------------------
    def render(self, response: MiddlewareResponse):
        """Generator: render a response on the device (if it has a browser)."""
        browser = getattr(self.handle, "browser", None)
        if browser is None:
            return None
        page = yield browser.render(response.body, response.content_type,
                                    trace=self.trace)
        self.record.render_seconds += page.render_seconds
        self.record.steps.append(
            f"rendered {page.source_bytes}B in {page.render_seconds:.3f}s"
        )
        return page

    def note(self, message: str) -> None:
        self.record.steps.append(message)


FlowFunction = Callable[[TransactionContext], Any]


class TransactionEngine:
    """Runs flows against a built system and keeps the ledger.

    ``retry`` is an optional policy object (duck-typed as
    :class:`repro.resilience.RetryPolicy`: ``max_attempts``,
    ``backoff(attempt)``, ``retryable_status(status)``,
    ``attempt_timeout``).  ``request_timeout`` is a per-attempt
    deadline applied to every context call that doesn't name its own.
    Both default to off, preserving the seed behaviour exactly.
    """

    def __init__(self, system, retry=None,
                 request_timeout: Optional[float] = None):
        self.system = system
        self.sim: Simulator = system.sim
        self.retry = retry if retry is not None \
            else getattr(system, "retry_policy", None)
        self.request_timeout = request_timeout if request_timeout is not None \
            else getattr(system, "request_timeout", None)
        self.records: list[TransactionRecord] = []

    def run_flow(self, handle, flow: FlowFunction,
                 name: Optional[str] = None) -> Event:
        """Execute ``flow(ctx)``; event yields the TransactionRecord.

        The record is marked ``ok`` when the flow returns without
        raising; its return value lands in ``record.result``.
        """
        client_name = getattr(
            getattr(handle, "station", None), "name", None
        ) or getattr(getattr(handle, "node", None), "name", "client")
        record = TransactionRecord(
            txn_id=next(_txn_ids),
            flow_name=name or getattr(flow, "__name__", "flow"),
            client_name=client_name,
            started_at=self.sim.now,
        )
        self.records.append(record)
        root = start_span(self.sim, f"txn.{record.flow_name}", "app",
                          client=client_name)
        if root is not None:
            record.trace_id = root.trace_id
        context = TransactionContext(self, handle, record,
                                     trace=ctx_of(root))
        done = self.sim.event()

        def runner(env):
            try:
                result = yield from flow(context)
                record.ok = True
                record.result = result
            except (Interrupt, SimulationError):
                # Kernel control flow must not be ledgered as a mere
                # failed transaction.
                raise
            except Exception as exc:  # repro: noqa[broad-except] ledger barrier
                record.ok = False
                record.error = f"{type(exc).__name__}: {exc}"
            record.finished_at = env.now
            end_span(self.sim, root, ok=record.ok)
            done.succeed(record)

        self.sim.spawn(runner(self.sim), name=f"txn-{record.txn_id}")
        return done

    # -- aggregate views ----------------------------------------------------
    @property
    def completed(self) -> list[TransactionRecord]:
        return [r for r in self.records if r.finished_at > 0]

    @property
    def successful(self) -> list[TransactionRecord]:
        return [r for r in self.completed if r.ok]

    def success_rate(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return len(self.successful) / len(done)

    def latencies(self) -> list[float]:
        return [r.latency for r in self.successful]
