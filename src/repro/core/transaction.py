"""The end-to-end mobile commerce transaction engine.

Requirement 1 of §1.1: "allow end users to perform mobile commerce
transactions easily, in a timely manner, and ubiquitously."  The engine
runs an application *flow* (a generator using a station's middleware
session and browser), measures it wall-to-wall, charges device-side
rendering to the station hardware, and produces a
:class:`TransactionRecord` the benchmarks aggregate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..middleware import MiddlewareResponse
from ..obs import ctx_of, end_span, start_span
from ..sim import Event, Interrupt, SimulationError, Simulator

__all__ = ["TransactionRecord", "TransactionContext", "TransactionEngine"]

_txn_ids = itertools.count(1)


@dataclass
class TransactionRecord:
    """The measured outcome of one end-to-end transaction."""

    txn_id: int
    flow_name: str
    client_name: str
    started_at: float
    finished_at: float = 0.0
    ok: bool = False
    error: str = ""
    result: Any = None
    requests: int = 0
    bytes_received: int = 0
    render_seconds: float = 0.0
    steps: list[str] = field(default_factory=list)
    # Id of this transaction's root span when a tracer was installed.
    trace_id: Optional[int] = None

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at


class TransactionContext:
    """What a flow sees: fetch/submit/render primitives plus bookkeeping."""

    def __init__(self, engine: "TransactionEngine", handle,
                 record: TransactionRecord, trace=None):
        self.engine = engine
        self.handle = handle
        self.record = record
        self.system = engine.system
        # TraceContext of the transaction's root span (None untraced);
        # every middleware call and render parents to it.
        self.trace = trace

    # -- network I/O ------------------------------------------------------
    def get(self, path: str):
        """Generator: GET a host path through the middleware session."""
        response = yield self.handle.session.get(self.system.url(path),
                                                 trace=self.trace)
        self._account(path, response)
        return response

    def post(self, path: str, form: dict):
        response = yield self.handle.session.post(self.system.url(path),
                                                  form, trace=self.trace)
        self._account(path, response)
        return response

    def _account(self, path: str, response: MiddlewareResponse) -> None:
        self.record.requests += 1
        self.record.bytes_received += len(response.body)
        self.record.steps.append(
            f"{path} -> {response.status} ({len(response.body)}B)"
        )

    # -- device-side work ----------------------------------------------------
    def render(self, response: MiddlewareResponse):
        """Generator: render a response on the device (if it has a browser)."""
        browser = getattr(self.handle, "browser", None)
        if browser is None:
            return None
        page = yield browser.render(response.body, response.content_type,
                                    trace=self.trace)
        self.record.render_seconds += page.render_seconds
        self.record.steps.append(
            f"rendered {page.source_bytes}B in {page.render_seconds:.3f}s"
        )
        return page

    def note(self, message: str) -> None:
        self.record.steps.append(message)


FlowFunction = Callable[[TransactionContext], Any]


class TransactionEngine:
    """Runs flows against a built system and keeps the ledger."""

    def __init__(self, system):
        self.system = system
        self.sim: Simulator = system.sim
        self.records: list[TransactionRecord] = []

    def run_flow(self, handle, flow: FlowFunction,
                 name: Optional[str] = None) -> Event:
        """Execute ``flow(ctx)``; event yields the TransactionRecord.

        The record is marked ``ok`` when the flow returns without
        raising; its return value lands in ``record.result``.
        """
        client_name = getattr(
            getattr(handle, "station", None), "name", None
        ) or getattr(getattr(handle, "node", None), "name", "client")
        record = TransactionRecord(
            txn_id=next(_txn_ids),
            flow_name=name or getattr(flow, "__name__", "flow"),
            client_name=client_name,
            started_at=self.sim.now,
        )
        self.records.append(record)
        root = start_span(self.sim, f"txn.{record.flow_name}", "app",
                          client=client_name)
        if root is not None:
            record.trace_id = root.trace_id
        context = TransactionContext(self, handle, record,
                                     trace=ctx_of(root))
        done = self.sim.event()

        def runner(env):
            try:
                result = yield from flow(context)
                record.ok = True
                record.result = result
            except (Interrupt, SimulationError):
                # Kernel control flow must not be ledgered as a mere
                # failed transaction.
                raise
            except Exception as exc:  # repro: noqa[broad-except] ledger barrier
                record.ok = False
                record.error = f"{type(exc).__name__}: {exc}"
            record.finished_at = env.now
            end_span(self.sim, root, ok=record.ok)
            done.succeed(record)

        self.sim.spawn(runner(self.sim), name=f"txn-{record.txn_id}")
        return done

    # -- aggregate views ----------------------------------------------------
    @property
    def completed(self) -> list[TransactionRecord]:
        return [r for r in self.records if r.finished_at > 0]

    @property
    def successful(self) -> list[TransactionRecord]:
        return [r for r in self.completed if r.ok]

    def success_rate(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return len(self.successful) / len(done)

    def latencies(self) -> list[float]:
        return [r.latency for r in self.successful]
