"""The paper's contribution: the six-component mobile commerce system model.

Taxonomy and graph (:mod:`components`, :mod:`model`), executable
builders for Figures 1 and 2 (:mod:`builder`), the end-to-end
transaction engine (:mod:`transaction`), the §1.1 requirements checker
(:mod:`requirements`) and figure rendering (:mod:`render`).
"""

from .builder import (
    ClientHandle,
    ECSystem,
    ECSystemBuilder,
    HOST_DOMAIN,
    HostTier,
    MCSystem,
    MCSystemBuilder,
    StationHandle,
)
from .components import (
    Component,
    ComponentKind,
    EC_COMPONENTS,
    EDGE_ASSOCIATION,
    EDGE_DATA_FLOW,
    MC_COMPONENTS,
)
from .model import EC_FLOW_CHAIN, Edge, MC_FLOW_CHAIN, SystemModel, ValidationReport
from .render import render_flow_chain, render_structure
from .requirements import (
    REQUIREMENT_DESCRIPTIONS,
    RequirementResult,
    RequirementsReport,
    check_requirements,
    run_interoperability_matrix,
)
from .transaction import TransactionContext, TransactionEngine, TransactionRecord

__all__ = [
    "ClientHandle",
    "ECSystem",
    "ECSystemBuilder",
    "HOST_DOMAIN",
    "HostTier",
    "MCSystem",
    "MCSystemBuilder",
    "StationHandle",
    "Component",
    "ComponentKind",
    "EC_COMPONENTS",
    "EDGE_ASSOCIATION",
    "EDGE_DATA_FLOW",
    "MC_COMPONENTS",
    "EC_FLOW_CHAIN",
    "Edge",
    "MC_FLOW_CHAIN",
    "SystemModel",
    "ValidationReport",
    "render_flow_chain",
    "render_structure",
    "REQUIREMENT_DESCRIPTIONS",
    "RequirementResult",
    "RequirementsReport",
    "check_requirements",
    "run_interoperability_matrix",
    "TransactionContext",
    "TransactionEngine",
    "TransactionRecord",
]
