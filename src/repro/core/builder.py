"""System builders: Figures 1 and 2 as executable object graphs.

:class:`MCSystemBuilder` assembles a complete mobile commerce system —
host tier (web server + database server + application programs),
wired core, a wireless bearer (any Table 4 WLAN standard or Table 5
cellular standard), mobile middleware (WAP gateway or i-mode centre),
and Table 2 mobile stations — and returns an :class:`MCSystem` whose
``model`` mirrors Figure 2 and validates against it.

:class:`ECSystemBuilder` assembles Figure 1's four-component electronic
commerce system the same way (desktop clients, no wireless, no
middleware), so the two figures can be compared by running the same
application code on both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..db import DatabaseClient, DatabaseServer
from ..devices import Microbrowser, MobileStation, build_station
from ..middleware import (
    CLIPPING_PORT,
    DirectHTTPSession,
    IMODE_PORT,
    IModeCenter,
    IModeSession,
    MiddlewareSession,
    PalmSession,
    WAPGateway,
    WAPSession,
    WebClippingProxy,
    WSP_PORT,
    WTLS_PORT,
)
from ..net import AddressAllocator, NameRegistry, Network, Node, Subnet
from ..obs import MetricsRegistry
from ..resilience import ResilienceConfig, ResilientSession
from ..security import PaymentProcessor, TokenIssuer, UserStore
from ..sim import SeedBank, Simulator
from ..web import WebServer
from ..wireless import (
    AccessPoint,
    CellularNetwork,
    ChannelModel,
    Mobile,
    Position,
    cellular_standard,
    wlan_standard,
)
from .components import Component, ComponentKind, EDGE_ASSOCIATION, EDGE_DATA_FLOW
from .model import SystemModel

__all__ = ["HostTier", "StationHandle", "ClientHandle", "MCSystem",
           "ECSystem", "MCSystemBuilder", "ECSystemBuilder"]

HOST_DOMAIN = "shop.example.com"


@dataclass
class HostTier:
    """The paper's host computer: web server, DB server, app programs."""

    web_node: Node
    db_node: Node
    web_server: WebServer
    db_server: DatabaseServer
    db_client: DatabaseClient
    payment: PaymentProcessor
    users: UserStore
    tokens: TokenIssuer


@dataclass
class StationHandle:
    """One provisioned mobile station with its middleware session."""

    station: MobileStation
    session: MiddlewareSession
    browser: Microbrowser
    attachment: object = None  # Association or CellularAttachment


@dataclass
class ClientHandle:
    """One wired desktop client (EC systems)."""

    node: Node
    session: MiddlewareSession


class _BaseSystem:
    """Shared host/infrastructure state of EC and MC systems."""

    def __init__(self, sim: Simulator, network: Network,
                 registry: NameRegistry, host: HostTier,
                 model: SystemModel, seeds: SeedBank):
        self.sim = sim
        self.network = network
        self.registry = registry
        self.host = host
        self.model = model
        self.seeds = seeds
        self.applications: list = []

    @property
    def host_url(self) -> str:
        return f"http://{HOST_DOMAIN}"

    def url(self, path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        return self.host_url + path

    def mount_application(self, application) -> None:
        """Install an application's server side and register it in the model."""
        application.install(self)
        self.applications.append(application)
        name = f"app:{application.category}"
        self.model.add(Component(
            kind=ComponentKind.APPLICATIONS,
            name=name,
            implementation=application,
        ))
        self.model.connect(name, "host-computers", EDGE_ASSOCIATION)

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)


class MCSystem(_BaseSystem):
    """A running six-component mobile commerce system."""

    def __init__(self, *args, middleware_kind: str, bearer_kind: str,
                 bearer_name: str, attach_fn, session_fn,
                 station_allocator: AddressAllocator, **kwargs):
        super().__init__(*args, **kwargs)
        self.middleware_kind = middleware_kind
        self.bearer_kind = bearer_kind
        self.bearer_name = bearer_name
        self._attach_fn = attach_fn
        self._session_fn = session_fn
        self._station_allocator = station_allocator
        self.stations: list[StationHandle] = []
        # Resilience wiring (populated by the builder): the primary
        # middleware gateway/centre/proxy, the optional standby, the
        # ResilienceConfig in force, and the retry policy + default
        # request timeout TransactionEngine picks up automatically.
        self.gateway = None
        self.standby_gateway = None
        self.resilience: Optional[ResilienceConfig] = None
        self.retry_policy = None
        self.request_timeout: Optional[float] = None
        # Observability + fleet control plane (populated by the
        # builder; all None/empty for the classic single-gateway
        # topology except ``metrics``, which always exists).
        self.metrics = None
        self.fleet = None
        self.balancer = None
        self.health_monitor = None
        self.autoscaler = None
        self.canary = None

    def add_station(self, device_name: str,
                    position: Position = Position(10.0, 0.0),
                    name: Optional[str] = None) -> StationHandle:
        """Provision a Table 2 device, attach it to the bearer."""
        address = self._station_allocator.allocate()
        station = build_station(self.sim, device_name, address,
                                position=position, name=name)
        self.network.adopt(station)
        attachment = self._attach_fn(station)
        session = self._session_fn(station)
        handle = StationHandle(
            station=station,
            session=session,
            browser=Microbrowser(station),
            attachment=attachment,
        )
        self.stations.append(handle)
        return handle


class ECSystem(_BaseSystem):
    """A running four-component electronic commerce system."""

    def __init__(self, *args, client_subnet: Subnet, core: Node, **kwargs):
        super().__init__(*args, **kwargs)
        self._client_subnet = client_subnet
        self._core = core
        self.clients: list[ClientHandle] = []

    def add_client(self, name: Optional[str] = None) -> ClientHandle:
        """Add a desktop client wired to the core."""
        node = self.network.add_node(
            name or f"desktop-{len(self.clients)}")
        self.network.connect(self._core, node, self._client_subnet,
                             bandwidth_bps=100_000_000, delay=0.002)
        self.network.build_routes()
        handle = ClientHandle(
            node=node,
            session=DirectHTTPSession(node, self.registry),
        )
        self.clients.append(handle)
        return handle


def _build_host_tier(sim: Simulator, network: Network, core: Node,
                     registry: NameRegistry, seeds: SeedBank) -> HostTier:
    web_node = network.add_node("web-host")
    db_node = network.add_node("db-host")
    network.connect(core, web_node, Subnet.parse("10.1.0.0/24"),
                    bandwidth_bps=100_000_000, delay=0.001)
    network.connect(web_node, db_node, Subnet.parse("10.1.1.0/24"),
                    bandwidth_bps=1_000_000_000, delay=0.000_2)

    db_server = DatabaseServer(db_node)
    db_client = DatabaseClient(web_node, db_node.primary_address)
    web_server = WebServer(web_node, database=db_client)

    payment = PaymentProcessor(sim, seeds.stream("payment"))
    users = UserStore(seeds.stream("users"))
    tokens = TokenIssuer(sim, secret=seeds.stream("tokens").bytes(32))
    web_server.services.update(
        payment=payment, users=users, tokens=tokens,
        database=db_client, registry=registry,
    )
    registry.register(HOST_DOMAIN, web_node.primary_address)

    def connect_db(env):
        yield db_client.connect()

    sim.spawn(connect_db(sim), name="host-db-connect")
    return HostTier(
        web_node=web_node,
        db_node=db_node,
        web_server=web_server,
        db_server=db_server,
        db_client=db_client,
        payment=payment,
        users=users,
        tokens=tokens,
    )


def _host_model(model: SystemModel, host: HostTier) -> None:
    """Register the host tier's boxes and internal edges (both figures)."""
    model.add(Component(ComponentKind.HOST_COMPUTERS, "host-computers",
                        implementation=host))
    model.add(Component(ComponentKind.WEB_SERVERS, "web-servers",
                        implementation=host.web_server))
    model.add(Component(ComponentKind.DATABASE_SERVERS, "database-servers",
                        implementation=host.db_server))
    model.add(Component(ComponentKind.APPLICATION_PROGRAMS,
                        "application-programs",
                        implementation=host.web_server.cgi))
    model.connect("host-computers", "web-servers", EDGE_ASSOCIATION)
    model.connect("host-computers", "database-servers", EDGE_ASSOCIATION)
    model.connect("host-computers", "application-programs", EDGE_ASSOCIATION)
    model.connect("web-servers", "database-servers", EDGE_DATA_FLOW)
    model.connect("application-programs", "web-servers", EDGE_DATA_FLOW)


class MCSystemBuilder:
    """Composable construction of Figure 2's system."""

    def __init__(self, seed: int = 0, middleware: str = "WAP",
                 bearer: tuple[str, str] = ("cellular", "GPRS"),
                 wireless_loss: float = 0.0, secure_wap: bool = False,
                 resilience: Optional[ResilienceConfig] = None,
                 middleware_port: Optional[int] = None):
        if middleware not in ("WAP", "i-mode", "Palm"):
            raise ValueError(f"unknown middleware {middleware!r}")
        if secure_wap and middleware != "WAP":
            raise ValueError("secure_wap requires the WAP middleware")
        self.secure_wap = secure_wap
        bearer_kind, bearer_name = bearer
        if bearer_kind not in ("wlan", "cellular"):
            raise ValueError(f"unknown bearer kind {bearer_kind!r}")
        self.seed = seed
        self.middleware = middleware
        self.bearer_kind = bearer_kind
        self.bearer_name = bearer_name
        self.wireless_loss = wireless_loss
        # None keeps historical behaviour bit-for-bit: no breakers, no
        # standby gateway, no retry, no shedding.
        self.resilience = resilience
        # Primary middleware port override (None = the protocol's
        # registered constant).  The standby endpoint is always derived
        # from the primary's actual port and published in the name
        # registry, so failover survives non-default layouts.
        self.middleware_port = middleware_port

    def _build_fleet_middleware(self, sim, seeds, registry,
                                middleware_node, res, cells,
                                metrics) -> dict:
        """Gateway fleet tier: pool + balancer + monitors (DESIGN §14).

        Member 0 reuses the classic port, seed-stream names and the
        ``middleware`` service name, so a fleet of one is byte-for-byte
        the single-gateway topology; the monitors (health, autoscale,
        canary) only spawn once there is an actual fleet to manage.
        """
        from ..fleet import (
            AutoScaler,
            CanaryController,
            GatewayFleet,
            HealthMonitor,
            LoadBalancer,
        )

        kind = self.middleware
        if kind == "WAP":
            base_port = self.middleware_port or WSP_PORT
        elif kind == "Palm":
            base_port = self.middleware_port or CLIPPING_PORT
        else:
            base_port = self.middleware_port or IMODE_PORT
        gw_address = middleware_node.primary_address
        secure = self.secure_wap

        def member_pressure(cell_index: int):
            if not cells:
                return None  # WLAN: no shared-airtime backlog probe
            return cells[cell_index % len(cells)].air_backlog

        def make_gateway(index, port, version, handicap, cell_index):
            suffix = "" if index == 0 else f"-m{index}"
            service = "middleware" if index == 0 else f"middleware-m{index}"
            breaker = (res.breaker(sim, name=f"{kind}-origin{suffix}")
                       if res.breaker_threshold > 0 else None)
            member_batch = res.batch_config()
            member_stream = (seeds.stream(f"gateway-admission{suffix}")
                             if member_batch is not None else None)
            pressure = member_pressure(cell_index)
            metric_name = f"gateway.gw-{index}"
            if kind == "WAP":
                gateway = WAPGateway(
                    middleware_node, registry, port=port,
                    wtls_port=port + (WTLS_PORT - WSP_PORT),
                    entropy=seeds.stream(f"wtls-gateway{suffix}"),
                    breaker=breaker, origin_timeout=res.origin_timeout,
                    batching=member_batch, batch_stream=member_stream,
                    air_pressure=pressure, handicap=handicap,
                    metrics=metrics, metric_name=metric_name)
                registry.register_service(service, gw_address,
                                          gateway.port)
                registry.register_service(f"{service}-wtls", gw_address,
                                          gateway.wtls_port)

                def make_member_session(station, _service=service,
                                        _index=index):
                    if secure:
                        endpoint = registry.lookup_service(
                            f"{_service}-wtls")
                        stream_name = (
                            f"wtls-{station.name}" if _index == 0
                            else f"wtls-m{_index}-{station.name}")
                        return WAPSession(
                            station, endpoint.address, port=endpoint.port,
                            secure=True,
                            entropy=seeds.stream(stream_name))
                    endpoint = registry.lookup_service(_service)
                    return WAPSession(station, endpoint.address,
                                      port=endpoint.port)
            elif kind == "Palm":
                gateway = WebClippingProxy(
                    middleware_node, registry, port=port,
                    breaker=breaker, origin_timeout=res.origin_timeout,
                    batching=member_batch, batch_stream=member_stream,
                    air_pressure=pressure, handicap=handicap,
                    metrics=metrics, metric_name=metric_name)
                registry.register_service(service, gw_address,
                                          gateway.port)

                def make_member_session(station, _service=service):
                    endpoint = registry.lookup_service(_service)
                    return PalmSession(station, endpoint.address,
                                       port=endpoint.port)
            else:
                gateway = IModeCenter(
                    middleware_node, registry, port=port,
                    breaker=breaker, origin_timeout=res.origin_timeout,
                    batching=member_batch, batch_stream=member_stream,
                    air_pressure=pressure, handicap=handicap,
                    metrics=metrics, metric_name=metric_name)
                registry.register_service(service, gw_address,
                                          gateway.port)

                def make_member_session(station, _service=service):
                    endpoint = registry.lookup_service(_service)
                    return IModeSession(station, endpoint.address,
                                        port=endpoint.port)
            return gateway, make_member_session

        fleet = GatewayFleet(sim, make_gateway, base_port=base_port,
                             port_stride=res.fleet_port_stride,
                             virtual_nodes=res.fleet_virtual_nodes,
                             n_cells=max(1, len(cells)))
        for _ in range(res.fleet_size):
            fleet.add_member()

        direct_factory = None
        if res.direct_fallback:
            def direct_factory(station):
                return DirectHTTPSession(station, registry)
        balancer = LoadBalancer(
            sim, fleet, direct_factory=direct_factory,
            sample_window=max(120.0, 4 * res.canary_window))

        def make_session(station: MobileStation) -> MiddlewareSession:
            return ResilientSession(balancer.provider(station),
                                    timeout=res.request_timeout,
                                    observer=balancer.observe, sim=sim)

        health = autoscaler = canary = None
        if res.fleet_size >= 2:
            health = HealthMonitor(
                sim, fleet, interval=res.health_interval,
                timeout=res.health_timeout,
                unhealthy_threshold=res.unhealthy_threshold,
                recovery_threshold=res.recovery_threshold,
                metrics=metrics)
            health.start()
        if res.autoscale:
            autoscaler = AutoScaler(
                sim, fleet, metrics,
                high_watermark=res.autoscale_high_watermark,
                low_watermark=res.autoscale_low_watermark,
                min_members=res.autoscale_min_members,
                max_members=res.autoscale_max_members,
                cooldown=res.autoscale_cooldown,
                interval=res.autoscale_interval)
            autoscaler.start()
        if res.canary_fraction > 0:
            canary = CanaryController(
                sim, fleet, balancer, fraction=res.canary_fraction,
                deploy_at=res.canary_deploy_at,
                handicap=res.canary_handicap,
                window=res.canary_window,
                min_samples=res.canary_min_samples,
                p95_ratio=res.canary_p95_ratio,
                success_delta=res.canary_success_delta,
                violations=res.canary_violations,
                healthy_windows=res.canary_healthy_windows)
            canary.start()

        return {
            "gateway": fleet.members["gw-0"].gateway,
            "make_session": make_session,
            "fleet": fleet,
            "balancer": balancer,
            "health": health,
            "autoscaler": autoscaler,
            "canary": canary,
        }

    def build(self) -> MCSystem:
        seeds = SeedBank(self.seed)
        sim = Simulator()
        network = Network(sim)
        registry = NameRegistry()
        model = SystemModel(name="mc-system")
        metrics = MetricsRegistry()
        fleet_size = (self.resilience.fleet_size
                      if self.resilience is not None else 0)
        if fleet_size < 0:
            raise ValueError(f"fleet_size must be >= 0, got {fleet_size}")

        core = network.add_node("internet-core", forwarding=True)
        host = _build_host_tier(sim, network, core, registry, seeds)

        # -- middleware node --------------------------------------------
        middleware_node = network.add_node("middleware-gw", forwarding=True)
        network.connect(core, middleware_node, Subnet.parse("10.2.0.0/24"),
                        bandwidth_bps=100_000_000, delay=0.002)

        # -- wireless bearer ----------------------------------------------
        station_subnet = Subnet.parse("10.200.0.0/16")
        allocator = AddressAllocator(station_subnet)
        loss_stream = (seeds.stream("wireless-loss")
                       if self.wireless_loss > 0 else None)

        if self.bearer_kind == "wlan":
            standard = wlan_standard(self.bearer_name)
            channel = ChannelModel(
                fading_stream=seeds.stream("fading")
                if self.wireless_loss > 0 else None)
            ap = AccessPoint(middleware_node, Position(0.0, 0.0), standard,
                             channel, wireless_subnet=station_subnet)
            air_pressure = None  # WLAN: no shared-airtime backlog probe
            bearer_impl = ap
            cells: list = []
            cellnet = None

            def attach(station: MobileStation):
                return ap.associate(station, station.mobile)
        else:
            standard = cellular_standard(self.bearer_name)
            cellnet = CellularNetwork(
                network, middleware_node, standard,
                loss_rate=self.wireless_loss, loss_stream=loss_stream,
                subscriber_subnet=str(station_subnet),
            )
            # A fleet gets one cell per initial member (the radio tier
            # scales with the planned middleware tier, not with later
            # autoscaling); the classic topology keeps its single cell.
            n_cells = fleet_size if fleet_size > 1 else 1
            cells = [cellnet.add_base_station(f"cell-{i}",
                                              Position(0.0, 0.0))
                     for i in range(n_cells)]
            base_station = cells[0]
            air_pressure = base_station.air_backlog
            bearer_impl = cellnet

            def attach(station: MobileStation):
                return cellnet.attach(station, station.mobile)

        network.build_routes()

        # -- middleware service -------------------------------------------
        res = self.resilience
        origin_timeout = res.origin_timeout if res is not None else 30.0
        breaker = (res.breaker(sim, name=f"{self.middleware}-origin")
                   if res is not None and fleet_size == 0 else None)
        # The fleet replaces the single-standby scheme wholesale: the
        # ring supplies the ordered failover candidates instead.
        want_standby = (res is not None and res.standby_gateway
                        and fleet_size == 0)
        standby_breaker = (
            res.breaker(sim, name=f"{self.middleware}-origin-standby")
            if want_standby else None)
        standby_gateway = None
        make_standby_session = None
        standby_offset = res.standby_port_offset if res is not None else 10
        # Gateway-side batching + admission control (off unless the
        # config enables it); primary and standby get independent
        # batchers with their own seeded jitter streams.
        batch_cfg = (res.batch_config()
                     if res is not None and fleet_size == 0 else None)
        batch_stream = (seeds.stream("gateway-admission")
                        if batch_cfg is not None else None)
        standby_batch_stream = (seeds.stream("gateway-admission-standby")
                                if batch_cfg is not None and want_standby
                                else None)
        gw_address = middleware_node.primary_address

        fleet_parts = None
        if fleet_size > 0:
            fleet_parts = self._build_fleet_middleware(
                sim, seeds, registry, middleware_node, res, cells, metrics)
            gateway = fleet_parts["gateway"]
            make_session = fleet_parts["make_session"]
            if cellnet is not None:
                fleet_balancer = fleet_parts["balancer"]

                def attach(station: MobileStation,
                           _cells=cells, _balancer=fleet_balancer,
                           _cellnet=cellnet):
                    member = _balancer.member_for(station.name)
                    cell = _cells[member.cell_index % len(_cells)]
                    return _cellnet.attach(station, station.mobile,
                                           cell=cell)
        elif self.middleware == "WAP":
            primary_port = self.middleware_port or WSP_PORT
            gateway = WAPGateway(middleware_node, registry,
                                 port=primary_port,
                                 wtls_port=primary_port
                                 + (WTLS_PORT - WSP_PORT),
                                 entropy=seeds.stream("wtls-gateway"),
                                 breaker=breaker,
                                 origin_timeout=origin_timeout,
                                 batching=batch_cfg,
                                 batch_stream=batch_stream,
                                 air_pressure=air_pressure,
                                 metrics=metrics,
                                 metric_name="gateway.primary")
            secure = self.secure_wap
            registry.register_service("middleware", gw_address,
                                      gateway.port)
            registry.register_service("middleware-wtls", gw_address,
                                      gateway.wtls_port)

            def make_session(station: MobileStation) -> MiddlewareSession:
                if secure:
                    endpoint = registry.lookup_service("middleware-wtls")
                    return WAPSession(
                        station, endpoint.address, port=endpoint.port,
                        secure=True,
                        entropy=seeds.stream(f"wtls-{station.name}"))
                endpoint = registry.lookup_service("middleware")
                return WAPSession(station, endpoint.address,
                                  port=endpoint.port)

            if want_standby:
                standby_gateway = WAPGateway(
                    middleware_node, registry,
                    port=gateway.port + standby_offset,
                    wtls_port=gateway.wtls_port + standby_offset,
                    entropy=seeds.stream("wtls-gateway-standby"),
                    breaker=standby_breaker, origin_timeout=origin_timeout,
                    batching=res.batch_config(),
                    batch_stream=standby_batch_stream,
                    air_pressure=air_pressure,
                    metrics=metrics, metric_name="gateway.standby")
                registry.register_service("middleware-standby", gw_address,
                                          standby_gateway.port)
                registry.register_service("middleware-standby-wtls",
                                          gw_address,
                                          standby_gateway.wtls_port)

                def make_standby_session(station):
                    if secure:
                        endpoint = registry.lookup_service(
                            "middleware-standby-wtls")
                        return WAPSession(
                            station, endpoint.address, port=endpoint.port,
                            secure=True,
                            entropy=seeds.stream(
                                f"wtls-standby-{station.name}"))
                    endpoint = registry.lookup_service("middleware-standby")
                    return WAPSession(station, endpoint.address,
                                      port=endpoint.port)
        elif self.middleware == "Palm":
            gateway = WebClippingProxy(middleware_node, registry,
                                       port=self.middleware_port
                                       or CLIPPING_PORT,
                                       breaker=breaker,
                                       origin_timeout=origin_timeout,
                                       batching=batch_cfg,
                                       batch_stream=batch_stream,
                                       air_pressure=air_pressure,
                                       metrics=metrics,
                                       metric_name="gateway.primary")
            registry.register_service("middleware", gw_address,
                                      gateway.port)

            def make_session(station: MobileStation) -> MiddlewareSession:
                endpoint = registry.lookup_service("middleware")
                return PalmSession(station, endpoint.address,
                                   port=endpoint.port)

            if want_standby:
                standby_gateway = WebClippingProxy(
                    middleware_node, registry,
                    port=gateway.port + standby_offset,
                    breaker=standby_breaker, origin_timeout=origin_timeout,
                    batching=res.batch_config(),
                    batch_stream=standby_batch_stream,
                    air_pressure=air_pressure,
                    metrics=metrics, metric_name="gateway.standby")
                registry.register_service("middleware-standby", gw_address,
                                          standby_gateway.port)

                def make_standby_session(station):
                    endpoint = registry.lookup_service("middleware-standby")
                    return PalmSession(station, endpoint.address,
                                       port=endpoint.port)
        else:
            gateway = IModeCenter(middleware_node, registry,
                                  port=self.middleware_port or IMODE_PORT,
                                  breaker=breaker,
                                  origin_timeout=origin_timeout,
                                  batching=batch_cfg,
                                  batch_stream=batch_stream,
                                  air_pressure=air_pressure,
                                  metrics=metrics,
                                  metric_name="gateway.primary")
            registry.register_service("middleware", gw_address,
                                      gateway.port)

            def make_session(station: MobileStation) -> MiddlewareSession:
                endpoint = registry.lookup_service("middleware")
                return IModeSession(station, endpoint.address,
                                    port=endpoint.port)

            if want_standby:
                standby_gateway = IModeCenter(
                    middleware_node, registry,
                    port=gateway.port + standby_offset,
                    breaker=standby_breaker, origin_timeout=origin_timeout,
                    batching=res.batch_config(),
                    batch_stream=standby_batch_stream,
                    air_pressure=air_pressure,
                    metrics=metrics, metric_name="gateway.standby")
                registry.register_service("middleware-standby", gw_address,
                                          standby_gateway.port)

                def make_standby_session(station):
                    endpoint = registry.lookup_service("middleware-standby")
                    return IModeSession(station, endpoint.address,
                                        port=endpoint.port)

        if res is not None and fleet_parts is None:
            make_primary_session = make_session

            def make_session(station: MobileStation) -> MiddlewareSession:
                routes = [make_primary_session(station)]
                if make_standby_session is not None:
                    routes.append(make_standby_session(station))
                if res.direct_fallback:
                    routes.append(DirectHTTPSession(station, registry))
                return ResilientSession(routes,
                                        timeout=res.request_timeout)

        # -- figure 2 model ----------------------------------------------
        _host_model(model, host)
        model.add(Component(ComponentKind.USERS, "users"))
        model.add(Component(ComponentKind.MOBILE_STATIONS, "mobile-stations",
                            implementation=[]))
        model.add(Component(ComponentKind.MOBILE_MIDDLEWARE,
                            "mobile-middleware", implementation=gateway,
                            optional=True))
        model.add(Component(ComponentKind.WIRELESS_NETWORKS,
                            "wireless-networks", implementation=bearer_impl,
                            attributes={"standard": self.bearer_name}))
        model.add(Component(ComponentKind.WIRED_NETWORKS, "wired-networks",
                            implementation=network))
        model.add(Component(ComponentKind.USER_INTERFACE, "user-interface"))
        model.connect("users", "mobile-stations", EDGE_DATA_FLOW)
        model.connect("users", "user-interface", EDGE_ASSOCIATION)
        model.connect("user-interface", "mobile-stations", EDGE_ASSOCIATION)
        model.connect("mobile-stations", "wireless-networks", EDGE_DATA_FLOW)
        model.connect("mobile-stations", "mobile-middleware",
                      EDGE_ASSOCIATION)
        model.connect("mobile-middleware", "wireless-networks",
                      EDGE_ASSOCIATION)
        model.connect("wireless-networks", "wired-networks", EDGE_DATA_FLOW)
        model.connect("wired-networks", "host-computers", EDGE_DATA_FLOW)

        system = MCSystem(
            sim, network, registry, host, model, seeds,
            middleware_kind=self.middleware,
            bearer_kind=self.bearer_kind,
            bearer_name=self.bearer_name,
            attach_fn=attach,
            session_fn=make_session,
            station_allocator=allocator,
        )
        model.component("mobile-stations").implementation = system.stations
        system.gateway = gateway
        system.standby_gateway = standby_gateway
        system.resilience = res
        system.metrics = metrics
        if fleet_parts is not None:
            system.fleet = fleet_parts["fleet"]
            system.balancer = fleet_parts["balancer"]
            system.health_monitor = fleet_parts["health"]
            system.autoscaler = fleet_parts["autoscaler"]
            system.canary = fleet_parts["canary"]
        if res is not None:
            host.web_server.enable_load_shedding(
                backlog=res.shed_backlog, retry_after=res.shed_retry_after,
                jitter=res.shed_jitter, stream=seeds.stream("shed-jitter"))
            system.retry_policy = res.retry_policy(
                seeds.stream("retry-jitter"))
            system.request_timeout = res.request_timeout
        return system


class ECSystemBuilder:
    """Composable construction of Figure 1's system."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def build(self) -> ECSystem:
        seeds = SeedBank(self.seed)
        sim = Simulator()
        network = Network(sim)
        registry = NameRegistry()
        model = SystemModel(name="ec-system")

        core = network.add_node("internet-core", forwarding=True)
        host = _build_host_tier(sim, network, core, registry, seeds)
        network.build_routes()

        _host_model(model, host)
        model.add(Component(ComponentKind.USERS, "users"))
        model.add(Component(ComponentKind.CLIENT_COMPUTERS,
                            "client-computers", implementation=[]))
        model.add(Component(ComponentKind.WIRED_NETWORKS, "wired-networks",
                            implementation=network))
        model.add(Component(ComponentKind.USER_INTERFACE, "user-interface"))
        model.connect("users", "client-computers", EDGE_DATA_FLOW)
        model.connect("users", "user-interface", EDGE_ASSOCIATION)
        model.connect("user-interface", "client-computers", EDGE_ASSOCIATION)
        model.connect("client-computers", "wired-networks", EDGE_DATA_FLOW)
        model.connect("wired-networks", "host-computers", EDGE_DATA_FLOW)

        system = ECSystem(
            sim, network, registry, host, model, seeds,
            client_subnet=Subnet.parse("10.3.0.0/24"),
            core=core,
        )
        model.component("client-computers").implementation = system.clients
        return system
