"""Checker for the five mobile-commerce system requirements (§1.1).

Each requirement becomes a concrete, falsifiable check against a built
system and its transaction ledger:

1. *Transactions easily, timely, ubiquitously* — every started
   transaction completed, within a latency budget, from every station.
2. *Personalization on request* — at least one application served
   content adapted to the requesting user.
3. *Wide application range* — the Table 1 categories actually mounted.
4. *Maximum interoperability* — every device x middleware x bearer
   combination in the tested matrix worked.
5. *Program/data independence* — the same application flow produced
   the same business outcome on different component stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sim import StatSummary

__all__ = ["RequirementResult", "RequirementsReport", "check_requirements",
           "run_interoperability_matrix", "REQUIREMENT_DESCRIPTIONS",
           "Claim", "STRUCTURAL_CLAIMS", "structural_claim",
           "claims_for_figure"]

REQUIREMENT_DESCRIPTIONS = {
    1: "end users can perform transactions easily, timely, ubiquitously",
    2: "products can be personalized or customized upon request",
    3: "a wide range of mobile commerce applications is supported",
    4: "maximum interoperability across technologies",
    5: "program/data independence under component change",
}


@dataclass(frozen=True)
class Claim:
    """One falsifiable structural claim the paper's figures/tables make.

    Claims are *static*: each is decided by
    :class:`repro.analysis.model_check.ModelChecker` over a
    built-but-not-run system graph, complementing the five *runtime*
    requirements below (which need a transaction ledger).  ``figures``
    names the reference structures the claim applies to (``"ec"``,
    ``"mc"`` or both).
    """

    claim_id: str
    reference: str          # where the paper makes the claim
    description: str
    figures: tuple[str, ...] = ("ec", "mc")


# The static claim matrix: every Figure 1/2 and Table 3 structural
# requirement, keyed for the model checker.
STRUCTURAL_CLAIMS: tuple[Claim, ...] = (
    Claim("EC-COMPONENTS", "Figure 1",
          "an EC system contains applications, client computers, wired "
          "networks and host computers", ("ec",)),
    Claim("EC-NO-WIRELESS", "Figure 1",
          "an EC system has no wireless networks component", ("ec",)),
    Claim("EC-FLOW", "Figure 1",
          "data/control flows users -> client computers -> wired "
          "networks -> host computers", ("ec",)),
    Claim("MC-COMPONENTS", "Figure 2",
          "an MC system contains applications, mobile stations, wireless "
          "networks, wired networks and host computers (middleware "
          "optional)", ("mc",)),
    Claim("MC-FLOW", "Figure 2",
          "data/control flows users -> mobile stations -> wireless "
          "networks -> wired networks -> host computers", ("mc",)),
    Claim("MC-APP-HOSTED", "Figure 2",
          "every mounted application is associated with a host computer",
          ("mc",)),
    Claim("MC-STATION-BEARER", "Figure 2",
          "mobile stations have an attachable wireless bearer", ("mc",)),
    Claim("MC-MIDDLEWARE-COMPAT", "Table 3",
          "the mounted middleware matches its protocol family: WAP "
          "requires a hosted WAP gateway, i-mode a centre with cHTML "
          "adaptation, Palm a web-clipping proxy", ("mc",)),
    Claim("MC-MIDDLEWARE-PROPS", "Table 3",
          "the built middleware exhibits its Table 3 properties: markup "
          "language (WML / cHTML / web clipping), session model "
          "(gateway-session / always-on / request-response) and payload "
          "ceiling (Palm: 1024 bytes per clipping)", ("mc",)),
    Claim("HOST-INTERNALS", "Section 7",
          "host computers contain web servers, database servers and "
          "application programs"),
    Claim("EDGES-RESOLVED", "Figures 1-2",
          "every association/data-flow edge connects two existing "
          "components"),
    Claim("REACHABLE", "Figures 1-2",
          "every component is reachable from the users component"),
)

_CLAIMS_BY_ID = {c.claim_id: c for c in STRUCTURAL_CLAIMS}


def structural_claim(claim_id: str) -> Claim:
    return _CLAIMS_BY_ID[claim_id]


def claims_for_figure(figure: str) -> list[Claim]:
    """The claims applying to ``"ec"`` or ``"mc"`` reference structures."""
    if figure not in ("ec", "mc"):
        raise ValueError(f"unknown figure {figure!r} (want 'ec' or 'mc')")
    return [c for c in STRUCTURAL_CLAIMS if figure in c.figures]


@dataclass
class RequirementResult:
    number: int
    description: str
    satisfied: bool
    evidence: str


@dataclass
class RequirementsReport:
    results: list[RequirementResult] = field(default_factory=list)

    @property
    def all_satisfied(self) -> bool:
        return all(r.satisfied for r in self.results)

    def result(self, number: int) -> RequirementResult:
        for r in self.results:
            if r.number == number:
                return r
        raise KeyError(f"no requirement {number}")

    def summary(self) -> str:
        lines = ["Requirements (paper §1.1):"]
        for r in sorted(self.results, key=lambda x: x.number):
            mark = "PASS" if r.satisfied else "FAIL"
            lines.append(f"  [{mark}] R{r.number}: {r.description}")
            lines.append(f"         {r.evidence}")
        return "\n".join(lines)


def check_requirements(
    system,
    engine,
    latency_budget: float = 10.0,
    interop_matrix: Optional[dict] = None,
    independence_outcomes: Optional[dict] = None,
    expected_categories: Optional[set] = None,
) -> RequirementsReport:
    """Evaluate all five requirements.

    ``interop_matrix`` maps (device, middleware, bearer) -> bool (run it
    with :func:`run_interoperability_matrix`); ``independence_outcomes``
    maps a stack label -> the business outcome of the reference flow.
    Checks without supplied evidence are reported unsatisfied with an
    explanatory message rather than silently passing.
    """
    report = RequirementsReport()

    # R1 — timely + ubiquitous transactions.
    completed = engine.completed
    ok = engine.successful
    stations = getattr(system, "stations", [])
    used_clients = {r.client_name for r in ok}
    latencies = StatSummary.of(engine.latencies())
    r1 = (bool(completed) and len(ok) == len(completed)
          and latencies.p95 <= latency_budget
          and all(getattr(h.station, "name", "") in used_clients
                  for h in stations))
    report.results.append(RequirementResult(
        1, REQUIREMENT_DESCRIPTIONS[1], r1,
        f"{len(ok)}/{len(completed)} transactions succeeded, "
        f"p95 latency {latencies.p95:.2f}s (budget {latency_budget}s), "
        f"{len(used_clients)} client(s) exercised",
    ))

    # R2 — personalization.
    personalized = [app for app in system.applications
                    if getattr(app, "personalization_used", False)]
    report.results.append(RequirementResult(
        2, REQUIREMENT_DESCRIPTIONS[2], bool(personalized),
        (f"personalized content served by: "
         f"{', '.join(a.category for a in personalized)}"
         if personalized else "no application served personalized content"),
    ))

    # R3 — breadth of applications.
    mounted = {app.category for app in system.applications}
    expected = expected_categories or mounted
    missing = expected - mounted
    report.results.append(RequirementResult(
        3, REQUIREMENT_DESCRIPTIONS[3], bool(mounted) and not missing,
        f"mounted categories: {sorted(mounted)}"
        + (f"; missing: {sorted(missing)}" if missing else ""),
    ))

    # R4 — interoperability.
    if interop_matrix:
        failures = [k for k, worked in interop_matrix.items() if not worked]
        report.results.append(RequirementResult(
            4, REQUIREMENT_DESCRIPTIONS[4], not failures,
            f"{len(interop_matrix) - len(failures)}/{len(interop_matrix)} "
            f"device x middleware x bearer combinations worked"
            + (f"; failing: {failures}" if failures else ""),
        ))
    else:
        report.results.append(RequirementResult(
            4, REQUIREMENT_DESCRIPTIONS[4], False,
            "no interoperability matrix supplied "
            "(run run_interoperability_matrix)",
        ))

    # R5 — program/data independence.
    if independence_outcomes and len(independence_outcomes) >= 2:
        outcomes = list(independence_outcomes.values())
        identical = all(o == outcomes[0] for o in outcomes[1:])
        report.results.append(RequirementResult(
            5, REQUIREMENT_DESCRIPTIONS[5], identical,
            f"same flow on {sorted(independence_outcomes)} produced "
            + ("identical outcomes" if identical else
               f"different outcomes: {independence_outcomes}"),
        ))
    else:
        report.results.append(RequirementResult(
            5, REQUIREMENT_DESCRIPTIONS[5], False,
            "need outcomes from at least two component stacks",
        ))
    return report


def run_interoperability_matrix(
    devices: list[str],
    middlewares: list[str],
    bearers: list[tuple[str, str]],
    scenario: Callable,
    seed: int = 0,
) -> dict:
    """Run ``scenario(builder_kwargs, device)`` over the full matrix.

    ``scenario`` must build a system (from the given kwargs), add the
    named device, run one transaction and return True/False.  Returns
    {(device, middleware, bearer_name): bool}.
    """
    matrix: dict = {}
    for device in devices:
        for middleware in middlewares:
            for bearer in bearers:
                worked = scenario(
                    dict(seed=seed, middleware=middleware, bearer=bearer),
                    device,
                )
                matrix[(device, middleware, bearer[1])] = bool(worked)
    return matrix
