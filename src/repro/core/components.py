"""The component taxonomy of Figures 1 and 2.

The paper's contribution is a decomposition: an electronic commerce
system has four components, a mobile commerce system six.  This module
names them, records which decomposition each belongs to, and defines
the edge vocabulary of the figures (association, bidirectional
data/control flow, optional component).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "ComponentKind",
    "EDGE_ASSOCIATION",
    "EDGE_DATA_FLOW",
    "EC_COMPONENTS",
    "MC_COMPONENTS",
    "Component",
]

EDGE_ASSOCIATION = "association"
EDGE_DATA_FLOW = "data_flow"  # bidirectional data/control flow


class ComponentKind:
    """Symbolic names for the boxes in Figures 1 and 2."""

    # Shared between EC and MC.
    USERS = "users"
    APPLICATIONS = "applications"          # EC/MC applications
    WIRED_NETWORKS = "wired_networks"
    HOST_COMPUTERS = "host_computers"
    # Host internals named in both figures.
    WEB_SERVERS = "web_servers"
    DATABASE_SERVERS = "database_servers"
    APPLICATION_PROGRAMS = "application_programs"
    USER_INTERFACE = "user_interface"
    # EC-only.
    CLIENT_COMPUTERS = "client_computers"
    # MC-only.
    MOBILE_STATIONS = "mobile_stations"
    MOBILE_MIDDLEWARE = "mobile_middleware"
    WIRELESS_NETWORKS = "wireless_networks"

    ALL = (
        USERS, APPLICATIONS, WIRED_NETWORKS, HOST_COMPUTERS, WEB_SERVERS,
        DATABASE_SERVERS, APPLICATION_PROGRAMS, USER_INTERFACE,
        CLIENT_COMPUTERS, MOBILE_STATIONS, MOBILE_MIDDLEWARE,
        WIRELESS_NETWORKS,
    )


# The top-level decomposition of Figure 1 (four components).
EC_COMPONENTS = (
    ComponentKind.APPLICATIONS,
    ComponentKind.CLIENT_COMPUTERS,
    ComponentKind.WIRED_NETWORKS,
    ComponentKind.HOST_COMPUTERS,
)

# The top-level decomposition of Figure 2 (six components).  Mobile
# middleware carries the figure's "optional component" marking.
MC_COMPONENTS = (
    ComponentKind.APPLICATIONS,
    ComponentKind.MOBILE_STATIONS,
    ComponentKind.MOBILE_MIDDLEWARE,
    ComponentKind.WIRELESS_NETWORKS,
    ComponentKind.WIRED_NETWORKS,
    ComponentKind.HOST_COMPUTERS,
)

MC_OPTIONAL_COMPONENTS = frozenset({ComponentKind.MOBILE_MIDDLEWARE})


@dataclass
class Component:
    """One instantiated box: a kind plus the object implementing it."""

    kind: str
    name: str
    implementation: Any = None
    optional: bool = False
    attributes: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in ComponentKind.ALL:
            raise ValueError(f"unknown component kind {self.kind!r}")

    def __repr__(self) -> str:  # pragma: no cover
        marker = "?" if self.optional else ""
        return f"<Component {self.kind}:{self.name}{marker}>"
