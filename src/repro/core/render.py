"""Structure rendering: Figures 1 and 2 as text diagrams.

``render_structure`` draws a :class:`~repro.core.model.SystemModel` the
way the paper draws its figures: one box per component (optional
components in ``( )``), association edges as ``---``, bidirectional
data/control flow as ``<==>``, and the host-computer internals nested.
The figure benchmarks print these for visual comparison with the paper.
"""

from __future__ import annotations

from .components import ComponentKind, EDGE_ASSOCIATION, EDGE_DATA_FLOW
from .model import SystemModel

__all__ = ["render_structure", "render_flow_chain"]

_HOST_INTERNAL_KINDS = (
    ComponentKind.WEB_SERVERS,
    ComponentKind.DATABASE_SERVERS,
    ComponentKind.APPLICATION_PROGRAMS,
)

_TOP_LEVEL_ORDER = (
    ComponentKind.APPLICATIONS,
    ComponentKind.USERS,
    ComponentKind.USER_INTERFACE,
    ComponentKind.CLIENT_COMPUTERS,
    ComponentKind.MOBILE_STATIONS,
    ComponentKind.MOBILE_MIDDLEWARE,
    ComponentKind.WIRELESS_NETWORKS,
    ComponentKind.WIRED_NETWORKS,
    ComponentKind.HOST_COMPUTERS,
)


def _box(label: str, optional: bool) -> str:
    inner = f"( {label} )" if optional else f"[ {label} ]"
    return inner


def render_structure(model: SystemModel, title: str = "") -> str:
    """A text rendering of the component graph."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("")
    lines.append("Components:")
    for kind in _TOP_LEVEL_ORDER:
        for component in model.components(kind):
            label = _box(component.name, component.optional)
            detail = ""
            if component.attributes:
                detail = "  " + ", ".join(
                    f"{k}={v}" for k, v in sorted(component.attributes.items())
                )
            lines.append(f"  {label}{detail}")
            if kind == ComponentKind.HOST_COMPUTERS:
                for inner_kind in _HOST_INTERNAL_KINDS:
                    for inner in model.components(inner_kind):
                        lines.append(f"      +-- {_box(inner.name, False)}")
    lines.append("")
    lines.append("Edges:  <==>  bidirectional data/control flow,"
                 "  ---  association")
    internal = {c.name for kind in _HOST_INTERNAL_KINDS
                for c in model.components(kind)}
    for edge in model.edges():
        arrow = "<==>" if edge.kind == EDGE_DATA_FLOW else "--- "
        prefix = "      " if (edge.source in internal
                              or edge.target in internal) else "  "
        lines.append(f"{prefix}{edge.source} {arrow} {edge.target}")
    return "\n".join(lines)


def render_flow_chain(model: SystemModel, chain: tuple) -> str:
    """The user-request path as a one-line diagram."""
    segments = []
    for kind in chain:
        names = [c.name for c in model.components(kind)]
        segments.append(names[0] if names else f"<missing {kind}>")
    return "  <==>  ".join(segments)
