"""A circuit breaker on the simulation clock.

Classic three-state machine guarding gateway -> origin calls:

* **closed** — calls flow; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures every
  call is rejected up front (the gateway answers 503 with a
  ``Retry-After`` hint) until ``recovery_time`` sim-seconds pass;
* **half-open** — a bounded number of probe calls go through; one
  success closes the breaker, one failure re-opens it.

All transitions read ``sim.now`` only, and every trip/rejection is
counted in :attr:`CircuitBreaker.stats` so chaos reports can show the
breaker actually doing its job.
"""

from __future__ import annotations

from ..sim import Counter, Simulator

__all__ = ["CircuitBreaker", "CircuitOpenError"]


class CircuitOpenError(Exception):
    """Raised by :meth:`CircuitBreaker.check` while the circuit is open."""


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe window."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, sim: Simulator, failure_threshold: int = 5,
                 recovery_time: float = 10.0, half_open_max: int = 1,
                 name: str = "breaker"):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        self.sim = sim
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_max = half_open_max
        self.state = CircuitBreaker.CLOSED
        self.stats = Counter()
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0

    @property
    def retry_after(self) -> float:
        """Sim-seconds until the breaker would move to half-open."""
        if self.state != CircuitBreaker.OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.recovery_time - self.sim.now)

    def allow(self) -> bool:
        """May a call proceed right now?  (Counts rejections.)"""
        if self.state == CircuitBreaker.OPEN:
            if self.sim.now - self._opened_at >= self.recovery_time:
                # Breaker transitions are driven by call outcomes that
                # each arrive in their own kernel event; the dynamic
                # sanitizer confirms no same-batch overlap.
                self.state = CircuitBreaker.HALF_OPEN  # repro: noqa[shared-state]
                self._probes = 0  # repro: noqa[shared-state]
                self.stats.incr("half_opens")  # repro: noqa[shared-state]
            else:
                self.stats.incr("rejections")
                return False
        if self.state == CircuitBreaker.HALF_OPEN:
            if self._probes >= self.half_open_max:
                self.stats.incr("rejections")
                return False
            self._probes += 1
        return True

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` instead of returning False."""
        if not self.allow():
            raise CircuitOpenError(
                f"{self.name} open; retry after {self.retry_after:g}s")

    def record_success(self) -> None:
        if self.state == CircuitBreaker.HALF_OPEN:
            self.stats.incr("closes")
        self.state = CircuitBreaker.CLOSED
        self._failures = 0  # repro: noqa[shared-state]

    def record_failure(self) -> None:
        if self.state == CircuitBreaker.HALF_OPEN:
            self._trip()
            return
        self._failures += 1
        if self.state == CircuitBreaker.CLOSED and \
                self._failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = CircuitBreaker.OPEN
        self._opened_at = self.sim.now  # repro: noqa[shared-state]
        self._failures = 0
        self.stats.incr("trips")
