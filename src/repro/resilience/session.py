"""Graceful degradation: failover across middleware routes.

A :class:`ResilientSession` presents the standard
:class:`~repro.middleware.base.MiddlewareSession` interface over an
ordered list of real sessions — typically ``[primary gateway session,
standby gateway session, direct-HTML fallback]``.  Transport-level
failures (:class:`~repro.middleware.base.RequestTimeout`,
``ConnectionError``, WTLS :class:`~repro.security.wtls.SecurityError`)
advance to the next route within the same request; the route that
answers becomes sticky for subsequent requests, so a crashed gateway
costs one failover rather than one per request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..middleware.base import MiddlewareSession, RequestTimeout
from ..security.wtls import SecurityError
from ..sim import Counter, Event

__all__ = ["ResilienceConfig", "ResilientSession", "FAILOVER_ERRORS"]

# Failures that mean "this route is unreachable", not "the origin said
# no": only these trigger failover (5xx statuses are the retry
# policy's business — a different gateway reaches the same origin).
FAILOVER_ERRORS = (RequestTimeout, ConnectionError, SecurityError)


class ResilientSession(MiddlewareSession):
    """Sticky-failover composite over ordered middleware sessions."""

    middleware_name = "resilient"

    def __init__(self, routes, timeout: Optional[float] = None):
        if not routes:
            raise ValueError("ResilientSession needs at least one route")
        self.routes = list(routes)
        self.sim = self.routes[0].sim
        # Default per-attempt deadline applied when the caller sets
        # none; without any deadline a dead route can only fail over
        # once its transport gives up.
        self.timeout = timeout
        self.stats = Counter()
        self._active = 0

    @property
    def active_route(self) -> MiddlewareSession:
        return self.routes[self._active]

    def get(self, url: str, trace=None,
            timeout: Optional[float] = None) -> Event:
        return self._call("get", url, None, trace, timeout)

    def post(self, url: str, form: dict, trace=None,
             timeout: Optional[float] = None) -> Event:
        return self._call("post", url, form, trace, timeout)

    def _call(self, method: str, url: str, form, trace,
              timeout: Optional[float]) -> Event:
        result = self.sim.event()
        deadline = timeout if timeout is not None else self.timeout

        def attempt_routes(env):
            last_exc = None
            for step in range(len(self.routes)):
                index = (self._active + step) % len(self.routes)
                session = self.routes[index]
                try:
                    if method == "get":
                        response = yield session.get(url, trace=trace,
                                                     timeout=deadline)
                    else:
                        response = yield session.post(url, form, trace=trace,
                                                      timeout=deadline)
                except FAILOVER_ERRORS as exc:
                    last_exc = exc
                    self.stats.incr("route_failures")
                    if step < len(self.routes) - 1:
                        self.stats.incr("failovers")
                    continue
                if index != self._active:
                    self._active = index
                    self.stats.incr("route_switches")
                self.stats.incr("requests")
                result.succeed(response)
                return
            self.stats.incr("exhausted")
            result.fail(last_exc if last_exc is not None
                        else ConnectionError("no middleware route available"))

        self.sim.spawn(attempt_routes(self.sim), name="resilient-call")
        return result

    def close(self) -> None:
        for session in self.routes:
            session.close()


@dataclass
class ResilienceConfig:
    """Knobs :class:`repro.core.MCSystemBuilder` wires into a system.

    One config block switches on the whole policy set: per-request
    timeouts + engine retry, gateway circuit breakers, web-server
    admission control, a standby gateway and (optionally) direct-HTML
    fallback.  Every default is deliberately aggressive enough for
    chaos benchmarks to show recovery inside a few sim-minutes.
    """

    # Per-attempt request deadline (device -> middleware -> back).
    request_timeout: float = 5.0
    # Engine retry policy.
    retry_attempts: int = 4
    retry_base_delay: float = 0.25
    retry_multiplier: float = 2.0
    retry_max_delay: float = 4.0
    retry_jitter: float = 0.2
    # Gateway -> origin circuit breaker.
    breaker_threshold: int = 4
    breaker_recovery_time: float = 8.0
    breaker_half_open_max: int = 2
    # Gateway -> origin HTTP timeout (shorter than the request
    # deadline so the breaker learns about dead origins quickly).
    origin_timeout: float = 3.0
    # Web-server admission control: extra queued requests tolerated on
    # top of the busy worker pool before shedding with 503.  The shed
    # Retry-After scales with queue depth and is spread by seeded
    # jitter so shed clients do not re-stampede in lockstep.
    shed_backlog: int = 16
    shed_retry_after: float = 1.0
    shed_jitter: float = 0.2
    # Graceful degradation.
    standby_gateway: bool = True
    direct_fallback: bool = True
    # The standby gateway listens this many ports above the primary
    # (its endpoint is derived from the primary's actual port and
    # published in the name registry, never hardcoded).
    standby_port_offset: int = 10
    # Gateway-side batching + admission control (DESIGN.md §13).  Off
    # by default: the chaos suite exercises failover without capacity
    # shaping; the load benchmark turns it on via
    # ``repro.perf.loadgen.bench_resilience``.
    gateway_batching: bool = False
    batch_window: float = 0.05
    batch_max: int = 8
    batch_item_cost: float = 0.0
    admission_watermark: int = 0
    admission_retry_floor: float = 0.25
    admission_jitter: float = 0.2
    # Reservation over-spacing: >1 leaves service slots free between
    # returning shed clients for fresh arrivals.
    admission_reserve_factor: float = 1.0
    # RAN backpressure: shed new work at the gateway while this many
    # transmitters are queued for the cell's shared airtime (0 = off).
    air_pressure_threshold: int = 0

    def batch_config(self):
        """BatchConfig for one gateway, or None when batching is off."""
        if not self.gateway_batching:
            return None
        from ..middleware.base import BatchConfig
        return BatchConfig(
            window=self.batch_window,
            max_batch=self.batch_max,
            per_item_cost=self.batch_item_cost,
            watermark=self.admission_watermark,
            retry_floor=self.admission_retry_floor,
            jitter=self.admission_jitter,
            reserve_factor=self.admission_reserve_factor,
            pressure_threshold=self.air_pressure_threshold,
        )

    def retry_policy(self, stream=None):
        from .retry import RetryPolicy
        return RetryPolicy(
            max_attempts=self.retry_attempts,
            base_delay=self.retry_base_delay,
            multiplier=self.retry_multiplier,
            max_delay=self.retry_max_delay,
            jitter=self.retry_jitter,
            attempt_timeout=self.request_timeout,
            stream=stream,
        )

    def breaker(self, sim, name: str = "breaker"):
        from .breaker import CircuitBreaker
        return CircuitBreaker(
            sim,
            failure_threshold=self.breaker_threshold,
            recovery_time=self.breaker_recovery_time,
            half_open_max=self.breaker_half_open_max,
            name=name,
        )
