"""Graceful degradation: failover across middleware routes.

A :class:`ResilientSession` presents the standard
:class:`~repro.middleware.base.MiddlewareSession` interface over an
ordered list of real sessions — typically ``[primary gateway session,
standby gateway session, direct-HTML fallback]``.  Transport-level
failures (:class:`~repro.middleware.base.RequestTimeout`,
``ConnectionError``, WTLS :class:`~repro.security.wtls.SecurityError`)
advance to the next route within the same request; the route that
answers becomes sticky for subsequent requests, so a crashed gateway
costs one failover rather than one per request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..middleware.base import MiddlewareSession, RequestTimeout
from ..security.wtls import SecurityError
from ..sim import Counter, Event

__all__ = ["ResilienceConfig", "ResilientSession", "FAILOVER_ERRORS"]

# Failures that mean "this route is unreachable", not "the origin said
# no": only these trigger failover (5xx statuses are the retry
# policy's business — a different gateway reaches the same origin).
FAILOVER_ERRORS = (RequestTimeout, ConnectionError, SecurityError)


class ResilientSession(MiddlewareSession):
    """Sticky-failover composite over ordered middleware sessions.

    ``routes`` is either a static ordered list of sessions (the classic
    primary -> standby -> direct chain) or a zero-argument callable
    returning the *current* ordered candidate list — which is how a
    fleet load balancer supplies ring-derived alternates that change as
    members are ejected, re-admitted, autoscaled or canaried.  With a
    static list the behaviour is bit-for-bit the pre-fleet one.

    ``observer(session, ok, elapsed)``, when given, is called once per
    route attempt with the per-attempt virtual latency — the balancer
    uses it to feed per-member SLO windows.  ``sim`` is only required
    for provider-backed sessions (a static list carries its own).
    """

    middleware_name = "resilient"

    def __init__(self, routes, timeout: Optional[float] = None,
                 observer=None, sim=None):
        if callable(routes):
            self._provider = routes
            self.routes = None
            if sim is None:
                raise ValueError(
                    "a provider-backed ResilientSession needs sim=")
            self.sim = sim
        else:
            if not routes:
                raise ValueError(
                    "ResilientSession needs at least one route")
            self._provider = None
            self.routes = list(routes)
            self.sim = sim if sim is not None else self.routes[0].sim
        # Default per-attempt deadline applied when the caller sets
        # none; without any deadline a dead route can only fail over
        # once its transport gives up.
        self.timeout = timeout
        self.observer = observer
        self.stats = Counter()
        self._active = 0
        # Provider mode tracks stickiness by session identity: the
        # candidate list changes under churn, so a positional index
        # would silently re-target a different member.
        self._sticky = None

    @property
    def active_route(self) -> Optional[MiddlewareSession]:
        if self._provider is not None:
            return self._sticky
        return self.routes[self._active]

    def _route_list(self) -> list:
        if self._provider is not None:
            routes = list(self._provider())
            if not routes:
                raise ConnectionError("no middleware route available")
            return routes
        return self.routes

    def _start_index(self, routes: list) -> int:
        if self._provider is None:
            return self._active
        sticky = self._sticky
        if sticky is not None:
            for index, session in enumerate(routes):
                if session is sticky:
                    return index
        return 0

    def get(self, url: str, trace=None,
            timeout: Optional[float] = None) -> Event:
        return self._call("get", url, None, trace, timeout)

    def post(self, url: str, form: dict, trace=None,
             timeout: Optional[float] = None) -> Event:
        return self._call("post", url, form, trace, timeout)

    def _call(self, method: str, url: str, form, trace,
              timeout: Optional[float]) -> Event:
        result = self.sim.event()
        deadline = timeout if timeout is not None else self.timeout

        def attempt_routes(env):
            try:
                routes = self._route_list()
            except ConnectionError as exc:
                self.stats.incr("exhausted")
                result.fail(exc)
                return
            start = self._start_index(routes)
            last_exc = None
            for step in range(len(routes)):
                if self._provider is None:
                    # Read _active fresh each attempt: a concurrent
                    # in-flight call may have advanced it, and the
                    # pre-fleet behaviour (which these stats tests pin
                    # bit-for-bit) did exactly this.
                    index = (self._active + step) % len(routes)
                else:
                    index = (start + step) % len(routes)
                session = routes[index]
                began = env.now
                try:
                    if method == "get":
                        response = yield session.get(url, trace=trace,
                                                     timeout=deadline)
                    else:
                        response = yield session.post(url, form, trace=trace,
                                                      timeout=deadline)
                except FAILOVER_ERRORS as exc:
                    last_exc = exc
                    self.stats.incr("route_failures")
                    if self.observer is not None:
                        self.observer(session, False, env.now - began)
                    if step < len(routes) - 1:
                        self.stats.incr("failovers")
                    continue
                if self._provider is not None:
                    if session is not self._sticky:
                        if self._sticky is not None:
                            self.stats.incr("route_switches")
                        self._sticky = session
                elif index != self._active:
                    self._active = index
                    self.stats.incr("route_switches")
                self.stats.incr("requests")
                if self.observer is not None:
                    self.observer(session, True, env.now - began)
                result.succeed(response)
                return
            self.stats.incr("exhausted")
            result.fail(last_exc if last_exc is not None
                        else ConnectionError("no middleware route available"))

        self.sim.spawn(attempt_routes(self.sim), name="resilient-call")
        return result

    def close(self) -> None:
        if self._provider is not None:
            # Balancer-backed sessions do not own their routes: member
            # sessions are shared infrastructure whose lifecycle the
            # fleet manages (and calling the provider here could
            # lazily create sessions just to close them).
            return
        for session in self.routes:
            session.close()


@dataclass
class ResilienceConfig:
    """Knobs :class:`repro.core.MCSystemBuilder` wires into a system.

    One config block switches on the whole policy set: per-request
    timeouts + engine retry, gateway circuit breakers, web-server
    admission control, a standby gateway and (optionally) direct-HTML
    fallback.  Every default is deliberately aggressive enough for
    chaos benchmarks to show recovery inside a few sim-minutes.
    """

    # Per-attempt request deadline (device -> middleware -> back).
    request_timeout: float = 5.0
    # Engine retry policy.
    retry_attempts: int = 4
    retry_base_delay: float = 0.25
    retry_multiplier: float = 2.0
    retry_max_delay: float = 4.0
    retry_jitter: float = 0.2
    # Gateway -> origin circuit breaker.
    breaker_threshold: int = 4
    breaker_recovery_time: float = 8.0
    breaker_half_open_max: int = 2
    # Gateway -> origin HTTP timeout (shorter than the request
    # deadline so the breaker learns about dead origins quickly).
    origin_timeout: float = 3.0
    # Web-server admission control: extra queued requests tolerated on
    # top of the busy worker pool before shedding with 503.  The shed
    # Retry-After scales with queue depth and is spread by seeded
    # jitter so shed clients do not re-stampede in lockstep.
    shed_backlog: int = 16
    shed_retry_after: float = 1.0
    shed_jitter: float = 0.2
    # Graceful degradation.
    standby_gateway: bool = True
    direct_fallback: bool = True
    # The standby gateway listens this many ports above the primary
    # (its endpoint is derived from the primary's actual port and
    # published in the name registry, never hardcoded).
    standby_port_offset: int = 10
    # Gateway-side batching + admission control (DESIGN.md §13).  Off
    # by default: the chaos suite exercises failover without capacity
    # shaping; the load benchmark turns it on via
    # ``repro.perf.loadgen.bench_resilience``.
    gateway_batching: bool = False
    batch_window: float = 0.05
    batch_max: int = 8
    batch_item_cost: float = 0.0
    admission_watermark: int = 0
    admission_retry_floor: float = 0.25
    admission_jitter: float = 0.2
    # Reservation over-spacing: >1 leaves service slots free between
    # returning shed clients for fresh arrivals.
    admission_reserve_factor: float = 1.0
    # RAN backpressure: shed new work at the gateway while this many
    # transmitters are queued for the cell's shared airtime (0 = off).
    air_pressure_threshold: int = 0
    # --- Gateway fleet (DESIGN.md §14) ---------------------------------
    # 0 keeps the classic single-gateway topology; >= 1 builds a
    # GatewayFleet behind a consistent-hash LoadBalancer.  fleet_size=1
    # is the byte-identical degenerate case (no monitors spawn).
    fleet_size: int = 0
    # Member i listens at primary_port + i * stride (stride leaves room
    # for the WTLS companion port and the legacy standby offset).
    fleet_port_stride: int = 20
    fleet_virtual_nodes: int = 64
    # Active health checks (per-member probe process, CircuitBreaker-
    # style ejection with half-open re-admission).
    health_interval: float = 2.0
    health_timeout: float = 1.5
    unhealthy_threshold: int = 3
    recovery_threshold: int = 2
    # Queue-depth autoscaling over the live batcher-depth gauges.
    autoscale: bool = False
    autoscale_high_watermark: float = 8.0
    autoscale_low_watermark: float = 1.0
    autoscale_min_members: int = 1
    autoscale_max_members: int = 8
    autoscale_cooldown: float = 30.0
    autoscale_interval: float = 5.0
    # Canary rollout: deploy a v2 variant to ceil(fraction * N) ring
    # slots at deploy_at, compare SLO windows, auto-promote/rollback.
    canary_fraction: float = 0.0
    canary_deploy_at: float = 0.0
    # Deliberate per-request service-time penalty on the v2 variant —
    # the chaos canary-regression scenario uses it to plant an SLO
    # regression the controller must catch.
    canary_handicap: float = 0.0
    canary_window: float = 20.0
    canary_min_samples: int = 5
    canary_p95_ratio: float = 1.5
    canary_success_delta: float = 0.1
    canary_violations: int = 2
    canary_healthy_windows: int = 3

    def batch_config(self):
        """BatchConfig for one gateway, or None when batching is off."""
        if not self.gateway_batching:
            return None
        from ..middleware.base import BatchConfig
        return BatchConfig(
            window=self.batch_window,
            max_batch=self.batch_max,
            per_item_cost=self.batch_item_cost,
            watermark=self.admission_watermark,
            retry_floor=self.admission_retry_floor,
            jitter=self.admission_jitter,
            reserve_factor=self.admission_reserve_factor,
            pressure_threshold=self.air_pressure_threshold,
        )

    def retry_policy(self, stream=None):
        from .retry import RetryPolicy
        return RetryPolicy(
            max_attempts=self.retry_attempts,
            base_delay=self.retry_base_delay,
            multiplier=self.retry_multiplier,
            max_delay=self.retry_max_delay,
            jitter=self.retry_jitter,
            attempt_timeout=self.request_timeout,
            stream=stream,
        )

    def breaker(self, sim, name: str = "breaker"):
        from .breaker import CircuitBreaker
        return CircuitBreaker(
            sim,
            failure_threshold=self.breaker_threshold,
            recovery_time=self.breaker_recovery_time,
            half_open_max=self.breaker_half_open_max,
            name=name,
        )
