"""Resilience policies for the mobile commerce transaction path.

The paper's first requirement — transactions completed "easily, in a
timely manner, and ubiquitously" — has to hold over links that flap,
gateways that crash and hosts that brown out.  This package supplies
the classic recovery policies, each wired through the *real* path
rather than bolted on around it:

* :class:`RetryPolicy` — exponential backoff with seeded jitter and
  per-attempt timeouts, consumed by
  :class:`repro.core.TransactionEngine`;
* :class:`CircuitBreaker` — open/half-open/closed guard for
  gateway -> origin calls in all three Table 3 middlewares;
* :class:`ResilientSession` — sticky failover across an ordered list
  of middleware sessions (primary gateway, standby gateway,
  direct-HTML fallback);
* :class:`ResilienceConfig` — the knob block
  :class:`repro.core.MCSystemBuilder` consumes to wire all of the
  above into a built system.

Everything runs on the simulation clock and seeded randomness, so a
chaos run with policies enabled is exactly as reproducible as one
without.
"""

from ..middleware.base import RequestTimeout
from .breaker import CircuitBreaker, CircuitOpenError
from .retry import RetryPolicy
from .session import ResilienceConfig, ResilientSession

__all__ = [
    "RequestTimeout",
    "CircuitBreaker",
    "CircuitOpenError",
    "RetryPolicy",
    "ResilienceConfig",
    "ResilientSession",
]
