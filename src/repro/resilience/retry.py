"""Retry with exponential backoff and seeded jitter.

The policy object is pure bookkeeping: the
:class:`~repro.core.transaction.TransactionContext` drives the actual
waiting (``yield sim.timeout(policy.backoff(attempt))``), so backoff
delays advance the simulation clock like any other work and never
touch the wall clock.  Jitter draws from a named
:class:`~repro.sim.RandomStream`, keeping retried runs byte-identical
for a given root seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import RandomStream

__all__ = ["RetryPolicy", "RETRYABLE_STATUSES"]

# Transient server-side statuses worth retrying: bad gateway, overload
# shedding (503 + Retry-After), and origin timeout.
RETRYABLE_STATUSES = frozenset({502, 503, 504})


@dataclass
class RetryPolicy:
    """Exponential backoff: ``base_delay * multiplier**(attempt-1)``.

    ``jitter`` widens each delay by a uniform factor in
    ``[1-jitter, 1+jitter]`` drawn from ``stream`` (no stream = no
    jitter).  ``attempt_timeout`` is the per-attempt request deadline
    handed to the middleware session when the caller sets none.
    """

    max_attempts: int = 4
    base_delay: float = 0.25
    multiplier: float = 2.0
    max_delay: float = 10.0
    jitter: float = 0.1
    attempt_timeout: Optional[float] = None
    stream: Optional[RandomStream] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, attempt: int) -> float:
        """Delay before the attempt *after* ``attempt`` (1-based)."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** max(0, attempt - 1))
        if self.stream is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * self.stream.random() - 1.0)
        return delay

    def retryable_status(self, status: int) -> bool:
        return status in RETRYABLE_STATUSES
