"""Discrete-event simulation substrate.

Public surface: :class:`Simulator` (the event loop), process/event
primitives, shared resources, seeded random streams and measurement
collectors.  Everything else in :mod:`repro` is built on this package.
"""

from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .monitor import Counter, LatencyRecorder, StatSummary, TimeSeries, Trace
from .random import RandomStream, SeedBank
from .resources import Channel, PriorityResource, Request, Resource, Store
from .sched import (
    SCHEDULERS,
    CalendarScheduler,
    HeapScheduler,
    Scheduler,
    default_scheduler,
    make_scheduler,
    scheduler_override,
    set_default_scheduler,
)

__all__ = [
    "Scheduler",
    "HeapScheduler",
    "CalendarScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "default_scheduler",
    "set_default_scheduler",
    "scheduler_override",
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Counter",
    "LatencyRecorder",
    "StatSummary",
    "TimeSeries",
    "Trace",
    "RandomStream",
    "SeedBank",
    "Channel",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
]
