"""Discrete-event simulation substrate.

Public surface: :class:`Simulator` (the event loop), process/event
primitives, shared resources, seeded random streams and measurement
collectors.  Everything else in :mod:`repro` is built on this package.
"""

from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .monitor import Counter, LatencyRecorder, StatSummary, TimeSeries, Trace
from .random import RandomStream, SeedBank
from .resources import Channel, PriorityResource, Request, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Counter",
    "LatencyRecorder",
    "StatSummary",
    "TimeSeries",
    "Trace",
    "RandomStream",
    "SeedBank",
    "Channel",
    "PriorityResource",
    "Request",
    "Resource",
    "Store",
]
