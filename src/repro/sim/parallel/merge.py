"""Deterministic merge of shard outputs.

Everything the shards exchange or return is merged in the global
``(time, priority, seq, shard)`` order — the same total order the
sequential kernel dispatches in, extended with the shard id as the
final tiebreak (shard ids are disjoint, so the extension never reorders
events the sequential run ordered).  Merging is pure data-plumbing over
plain dicts/lists; nothing here consults the clock, the host, or any
randomness, so identical shard payloads merge to identical bytes.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["accumulate_deltas", "canonical_state_hash",
           "conservation_check", "merge_samples", "merge_window_log"]


def merge_window_log(window_log: list) -> list:
    """Flatten per-window shard reports into one ordered delta log.

    Each delta is ``[time, priority, seq, key, value]``; the merged log
    is sorted by ``(time, priority, seq, shard, key)``.  This is the
    boundary event stream a cut link would carry, in the order the
    sequential run would have processed it.
    """
    entries = []
    for window in window_log:
        for report in window["reports"]:
            shard = report["shard"]
            for delta in report.get("deltas", []):
                time_, priority, seq, key, value = delta
                entries.append((time_, priority, seq, shard, key, value))
    entries.sort(key=lambda entry: entry[:5])
    return [{"time": entry[0], "priority": entry[1], "seq": entry[2],
             "shard": entry[3], "key": entry[4], "value": entry[5]}
            for entry in entries]


def accumulate_deltas(merged_log: list) -> dict:
    """Fold the ordered delta log into per-key totals.

    Merge-point updates commute, so the fold over the ordered log
    equals the fold in any order — but folding the *ordered* log is
    what a sequential observer at the cut would have computed, which is
    the equivalence :func:`conservation_check` pins against the final
    shard states.
    """
    totals: dict = {}
    for entry in merged_log:
        totals[entry["key"]] = totals.get(entry["key"], 0) + entry["value"]
    return totals


def conservation_check(merged_log: list, final_totals: dict,
                       tolerance: float = 1e-9) -> dict:
    """Every unit that crossed a window boundary is accounted for.

    ``final_totals`` holds each merge-point key's value summed over the
    final shard states; the accumulated window deltas must match.  A
    mismatch means a window report dropped or double-counted a delta —
    the merge protocol's only silent failure mode — so callers raise on
    ``ok=False``.
    """
    accumulated = accumulate_deltas(merged_log)
    mismatches = {}
    for key in sorted(set(accumulated) | set(final_totals)):
        got = accumulated.get(key, 0)
        expected = final_totals.get(key, 0)
        if abs(got - expected) > tolerance:
            mismatches[key] = {"windows": got, "final": expected}
    return {"ok": not mismatches, "mismatches": mismatches}


def merge_samples(sample_lists: list) -> list:
    """Globally sorted union of per-shard sample lists.

    Sorting the union reproduces what the sequential run's single
    ``sorted(engine.latencies())`` would contain: percentile extraction
    downstream is order-independent given the sort.
    """
    merged = []
    for samples in sample_lists:
        merged.extend(samples)
    merged.sort()
    return merged


def canonical_state_hash(payloads: list) -> str:
    """SHA-256 over the canonical JSON of per-shard deterministic state.

    The hash covers the *pre-merge* shard payloads (deterministic
    sections only, in shard order), so two runs agree iff every shard's
    virtual run agreed — a sharper probe than comparing merged output,
    which could mask compensating shard-level differences.
    """
    state = [{"shard": payload["shard"],
              "deterministic": payload["deterministic"]}
             for payload in sorted(payloads,
                                   key=lambda item: item["shard"])]
    blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
