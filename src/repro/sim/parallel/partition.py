"""The shard-cut planner for conservative parallel execution.

The paper's four-segment topology (device → wireless network →
middleware → wired Internet/server) is cut at the wired-link boundary:
a shard owns a contiguous range of users, their stations, their cell,
their gateway, and a replica of the wired host tier.  The only state
crossing the cut is a small set of *merge points* — logically global
quantities whose updates commute (account balances partitioned by user,
stock decrements, admission counters) — exchanged as window-boundary
deltas and merged in global ``(time, priority, seq, shard)`` order.

Legality is not assumed: :func:`plan_partition` consumes the ``repro
races --json`` shared-state matrix and requires every
``cross_process_write`` key to classify as one of

* ``replicated`` — a ``module.Class.attr`` key whose instances are all
  reachable from exactly one shard's object graph (the replica
  topology shares nothing), so the writes are shard-local;
* ``merge-point`` — a designated commutative global quantity with a
  declared merge operator;
* ``control-plane`` — the gateway-fleet tier (balancer ring, health
  monitor, canary controller) whose whole point is coordinating
  *across* gateways; it spans shards by construction, so requesting a
  fleet makes the cut illegal (the caller falls back to sequential);
* anything else — module-level globals, unknown packages — blocks the
  cut outright (:class:`PartitionError`).

Lookahead: every cut crosses the ``middleware-gw<->internet-core``
wired link (propagation delay 0.002s in the reference build), so no
shard can affect another in less than the minimum cut-link delay.  The
synchronisation window is therefore ``max(lookahead, horizon /
target_windows)`` — merge points commute, so correctness never needs a
window *smaller* than the lookahead, and larger windows just batch the
delta exchange.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CutLink", "CutPlan", "PartitionError", "ShardSpec",
           "classify_matrix", "default_matrix", "default_shard_count",
           "derive_shard_seed", "plan_json", "plan_partition",
           "suggest_cut"]


class PartitionError(ValueError):
    """No legal shard cut exists for the requested scenario."""

    def __init__(self, reason: str, blocking: Optional[list] = None):
        super().__init__(reason)
        self.reason = reason
        self.blocking = list(blocking or [])


@dataclass(frozen=True)
class CutLink:
    """A wired link severed by the shard cut."""

    name: str
    delay: float
    shard: int

    def to_dict(self) -> dict:
        return {"name": self.name, "delay": self.delay, "shard": self.shard}


@dataclass(frozen=True)
class ShardSpec:
    """One shard of the partitioned scenario (picklable, spawn-safe).

    ``params`` carries everything a worker process needs to rebuild the
    shard from scratch — scenario kwargs plus the coordinator's
    optimization-flag snapshot — as plain picklable values.
    """

    shard_id: int
    users: int
    user_offset: int
    seed: int
    params: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"shard": self.shard_id, "users": self.users,
                "user_offset": self.user_offset, "seed": self.seed}


@dataclass
class CutPlan:
    """The partitioner's output: shard layout plus synchronisation."""

    users: int
    seed: int
    horizon: float
    shards: list          # list[ShardSpec] (params filled by the caller)
    cut_links: list       # list[CutLink]
    lookahead: float
    sync_window: float
    windows: int
    merge_points: dict    # key -> merge operator
    classification: dict  # key -> class label
    fleet: int = 0

    def to_dict(self) -> dict:
        return {
            "users": self.users,
            "seed": self.seed,
            "horizon": self.horizon,
            "fleet": self.fleet,
            "legal": True,
            "shards": [spec.to_dict() for spec in self.shards],
            "cut_links": [link.to_dict() for link in self.cut_links],
            "lookahead": self.lookahead,
            "sync_window": self.sync_window,
            "windows": self.windows,
            "merge_points": dict(sorted(self.merge_points.items())),
            "classes": _class_counts(self.classification),
            "blocking_keys": [],
        }


# The wired boundary every shard cut severs, as built by
# MCSystemBuilder: gateway node <-> internet core, 0.002s propagation.
CUT_LINK_NAME = "middleware-gw<->internet-core"
CUT_LINK_DELAY = 0.002

# Packages whose Class.attr instances live inside one shard's replica
# topology; cross-process writes on them are shard-local by
# construction (nothing in a shard's object graph is reachable from
# another shard).
REPLICATED_PREFIXES = (
    "repro.apps.", "repro.core.", "repro.db.", "repro.devices.",
    "repro.faults.", "repro.middleware.", "repro.net.", "repro.obs.",
    "repro.resilience.", "repro.security.", "repro.web.",
    "repro.wireless.",
)

# The gateway-fleet control plane coordinates across gateways; since a
# shard owns exactly one gateway, fleet state would span shards.
CONTROL_PLANE_PREFIXES = ("repro.fleet.",)

# Designated commutative global quantities: their per-shard updates
# merge into the sequential run's global value with the named operator.
MERGE_POINT_OPERATORS = {
    # Account balances/authorizations are partitioned by user id —
    # each user's row is written by exactly one shard.
    "repro.security.payment.PaymentProcessor.accounts": "disjoint-union",
    "repro.security.payment.PaymentProcessor.authorizations":
        "disjoint-union",
    "repro.security.payment.PaymentProcessor.stats": "sum",
    # Stock decrements and synced rows commute (counted quantities).
    "repro.db.sync._Namespace.records": "disjoint-union",
    "repro.db.sync._Namespace.version": "sum",
    # Transaction records / spans carry their own timestamps, so the
    # global view is an ordered merge on (time, priority, seq, shard).
    "repro.core.transaction.TransactionEngine.records": "ordered-merge",
    "repro.obs.span.Tracer.spans": "ordered-merge",
}

DEFAULT_TARGET_WINDOWS = 16
MAX_SHARD_USERS = 125


def classify_matrix(matrix: dict, fleet: int = 0) -> tuple:
    """Classify every cross-process-write key; return (classes, blocking).

    ``classes`` maps each key to its label; ``blocking`` lists the keys
    (with reasons) that make the cut illegal for this scenario.
    """
    classes: dict = {}
    blocking: list = []
    for key in sorted(matrix):
        entry = matrix[key]
        if not entry.get("cross_process_write"):
            continue
        label = _classify_key(key)
        if label == "control-plane" and fleet > 0:
            blocking.append({
                "key": key,
                "reason": "fleet control plane spans shards "
                          "(one gateway per shard)",
            })
        elif label == "blocking":
            blocking.append({
                "key": key,
                "reason": "module-level or unclassified shared state "
                          "is not shard-local under fork",
            })
        classes[key] = label
    return classes, blocking


def _classify_key(key: str) -> str:
    if key in MERGE_POINT_OPERATORS:
        return "merge-point"
    if any(key.startswith(p) for p in CONTROL_PLANE_PREFIXES):
        return "control-plane"
    parts = key.rsplit(".", 2)
    # Shard-locality only holds for per-instance attributes: the key
    # must be module.Class.attr with a real class segment.  A
    # module-level name (lowercase second-to-last segment) is process
    # state, not instance state, and blocks the cut.
    class_like = (len(parts) == 3
                  and parts[1].lstrip("_")[:1].isupper())
    if class_like and any(key.startswith(p) for p in REPLICATED_PREFIXES):
        return "replicated"
    return "blocking"


def _class_counts(classification: dict) -> dict:
    counts: dict = {}
    for label in classification.values():
        counts[label] = counts.get(label, 0) + 1
    return counts


def derive_shard_seed(seed: int, shard_id: int) -> int:
    """Per-shard seed stream: shard 0 keeps the scenario seed.

    Keeping shard 0 on the global seed makes the one-shard plan's
    virtual run literally the sequential run (same seed, same users),
    which is what the 1-shard ≡ sequential byte-identity test pins.
    Other shards decorrelate through a stable CRC mix.
    """
    if shard_id == 0:
        return seed
    return zlib.crc32(f"{seed}:{shard_id}".encode()) & 0x7FFFFFFF


def default_shard_count(users: int, workers: int = 1) -> int:
    """Shard count for a scenario: enough for the workers, capped so a
    shard never exceeds :data:`MAX_SHARD_USERS` users."""
    by_size = (users + MAX_SHARD_USERS - 1) // MAX_SHARD_USERS
    return max(1, workers, by_size) if users > 1 else 1


def plan_partition(users: int, seed: int = 7, horizon: float = 240.0,
                   matrix: Optional[dict] = None, shards: Optional[int] = None,
                   workers: int = 1, fleet: int = 0,
                   target_windows: int = DEFAULT_TARGET_WINDOWS) -> CutPlan:
    """Produce a legal shard cut or raise :class:`PartitionError`.

    ``matrix`` is the ``repro races --json`` access matrix (default:
    analyse the installed ``repro`` sources, cached per process).  The
    shard count is fixed by the plan — ``--workers`` only chooses how
    many OS processes *host* those shards — so every worker count
    executes the identical decomposition and byte-identity across
    worker counts is structural, not incidental.
    """
    if users < 1:
        raise ValueError(f"users must be >= 1, got {users}")
    if matrix is None:
        matrix = default_matrix()
    classification, blocking = classify_matrix(matrix, fleet=fleet)
    if blocking:
        keys = ", ".join(entry["key"] for entry in blocking[:4])
        more = len(blocking) - 4
        suffix = f" (+{more} more)" if more > 0 else ""
        raise PartitionError(
            f"no legal cut: {len(blocking)} cross-process-write key(s) "
            f"cannot be made shard-local: {keys}{suffix}", blocking)

    count = shards if shards is not None else default_shard_count(
        users, workers)
    count = max(1, min(count, users))
    base, extra = divmod(users, count)
    specs = []
    offset = 0
    for shard_id in range(count):
        size = base + (1 if shard_id < extra else 0)
        specs.append(ShardSpec(shard_id=shard_id, users=size,
                               user_offset=offset,
                               seed=derive_shard_seed(seed, shard_id)))
        offset += size

    cut_links = [CutLink(name=CUT_LINK_NAME, delay=CUT_LINK_DELAY,
                         shard=spec.shard_id) for spec in specs]
    lookahead = min(link.delay for link in cut_links)
    sync_window = max(lookahead, horizon / max(1, target_windows))
    windows = max(1, round(horizon / sync_window))
    merge_points = {key: MERGE_POINT_OPERATORS[key]
                    for key, label in classification.items()
                    if label == "merge-point"}
    return CutPlan(users=users, seed=seed, horizon=horizon, shards=specs,
                   cut_links=cut_links, lookahead=lookahead,
                   sync_window=sync_window, windows=windows,
                   merge_points=merge_points,
                   classification=classification, fleet=fleet)


_MATRIX_CACHE: dict = {}  # repro: noqa[fork-unsafe-global] — static-analysis result for the installed sources; identical in every process that computes it


def default_matrix() -> dict:
    """The access matrix for the installed ``repro`` sources (cached)."""
    if "matrix" not in _MATRIX_CACHE:
        import os

        import repro
        from repro.analysis.races import analyze_paths

        package_dir = os.path.dirname(repro.__file__)
        _MATRIX_CACHE["matrix"] = analyze_paths(
            [package_dir]).to_dict()["matrix"]
    return _MATRIX_CACHE["matrix"]


def suggest_cut(users: int = 500, seed: int = 7, horizon: float = 240.0,
                workers: int = 4, fleet: int = 0,
                matrix: Optional[dict] = None) -> dict:
    """The ``repro races --suggest-cut`` artifact: plan or refusal.

    Always returns a JSON-able dict; an illegal cut reports ``legal:
    false`` with the blocking keys instead of raising, so the artifact
    documents *why* the scenario falls back to sequential.
    """
    try:
        plan = plan_partition(users=users, seed=seed, horizon=horizon,
                              workers=workers, fleet=fleet, matrix=matrix)
    except PartitionError as exc:
        if matrix is None:
            matrix = default_matrix()
        classification, _ = classify_matrix(matrix, fleet=fleet)
        return {
            "users": users,
            "seed": seed,
            "horizon": horizon,
            "fleet": fleet,
            "legal": False,
            "reason": exc.reason,
            "blocking_keys": exc.blocking,
            "classes": _class_counts(classification),
            "shards": [],
            "cut_links": [],
        }
    return plan.to_dict()


def plan_json(plan_dict: dict) -> str:
    """Canonical serialisation: byte-identical for identical plans."""
    return json.dumps(plan_dict, indent=2, sort_keys=True)
