"""Conservative parallel DES: shard partitioning, execution, merge.

The package splits a simulation scenario into shards cut at the wired
network boundary, runs each shard's :class:`~repro.sim.kernel.Simulator`
in its own OS process under window (null-message) synchronisation, and
deterministically merges the results so a parallel run is byte-identical
to the sequential one.  See DESIGN.md §15.

* :mod:`.partition` — the cut planner: consumes the ``repro races
  --json`` shared-state matrix and proves every cross-process-write key
  is shard-local, a commutative merge point, or illegal (no cut).
* :mod:`.engine` — the conservative coordinator: multiprocess shard
  execution over pipes, plus the single-process lockstep debug mode.
* :mod:`.merge` — deterministic merge of window deltas and final shard
  payloads in global ``(time, priority, seq, shard)`` order.
"""

from .engine import ParallelExecutionError, run_partitioned
from .merge import (accumulate_deltas, canonical_state_hash, merge_samples,
                    merge_window_log)
from .partition import (CutPlan, PartitionError, ShardSpec, classify_matrix,
                        plan_partition, suggest_cut)

__all__ = [
    "CutPlan",
    "ParallelExecutionError",
    "PartitionError",
    "ShardSpec",
    "accumulate_deltas",
    "canonical_state_hash",
    "classify_matrix",
    "merge_samples",
    "merge_window_log",
    "plan_partition",
    "run_partitioned",
    "suggest_cut",
]
