"""Conservative windowed shard execution across OS processes.

The coordinator owns a :class:`~.partition.CutPlan`'s shard specs and a
*factory* (a picklable top-level callable ``spec -> shard``).  A shard
object wraps one fully built scenario around today's sequential
:class:`~repro.sim.kernel.Simulator` and exposes two methods:

* ``advance(window, until) -> dict`` — run the shard's simulator to
  virtual time ``until`` and return a picklable window report (clock,
  cumulative event count, merge-point deltas since the last window);
* ``finish() -> dict`` — after the last window, derive the shard's
  final payload (its deterministic report section plus raw samples).

Synchronisation is the conservative null-message scheme specialised to
a fixed window size: the coordinator's ``("advance", k, until)`` grant
*is* the null message — it promises every peer shard has reached the
previous boundary, so executing up to ``until`` (≥ lookahead past the
boundary) can never receive a straggler from the past.  No shard ever
executes past its granted horizon, which is the CMB safety condition.

Two hosting modes execute the *identical* decomposition:

* ``workers >= 2`` — shards are dealt round-robin onto worker
  processes connected by pipes (fork start method where available;
  specs and factories are picklable so spawn works too);
* ``workers == 1`` — the lockstep debug mode: same shards, same
  windows, interleaved in shard order inside the calling process.

Because each shard's virtual run is a function of its spec alone —
never of which process hosts it — the per-shard payloads, and hence the
merged report, are byte-identical across worker counts.  That claim is
enforced, not assumed: ``repro.perf.determinism.parallel_check`` holds
it to byte equality in CI.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Callable, Optional

__all__ = ["ParallelExecutionError", "run_partitioned"]


class ParallelExecutionError(RuntimeError):
    """A worker process failed; carries the remote traceback."""


def _window_boundaries(horizon: float, windows: int) -> list:
    """Window end times; the final boundary is exactly the horizon."""
    windows = max(1, int(windows))
    return [horizon if k == windows else horizon * k / windows
            for k in range(1, windows + 1)]


def _worker_main(conn, factory, specs, opt_flags) -> None:
    """Worker process loop: build the assigned shards, serve grants."""
    try:
        if opt_flags:
            from ...opt import OPTIMIZATIONS
            for name, value in opt_flags.items():
                setattr(OPTIMIZATIONS, name, value)
        shards = [factory(spec) for spec in specs]
        conn.send(("ready", [spec.shard_id for spec in specs]))
        while True:
            message = conn.recv()
            if message[0] == "advance":
                _, window, until = message
                conn.send(("window",
                           [shard.advance(window, until)
                            for shard in shards]))
            elif message[0] == "finish":
                conn.send(("done", [shard.finish() for shard in shards]))
            elif message[0] == "stop":
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown message {message[0]!r}")
    except EOFError:  # coordinator died; exit quietly
        pass
    except BaseException:  # repro: noqa[broad-except] — process boundary: any worker failure must be reported over the pipe, not lost to a silent exit code
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return multiprocessing.get_context("spawn")


def run_partitioned(specs: list, factory: Callable, horizon: float,
                    windows: int, workers: int = 1,
                    opt_flags: Optional[dict] = None) -> dict:
    """Execute the shard specs under window synchronisation.

    Returns ``{"payloads", "window_log", "mode", "workers",
    "wall_seconds", "total_seconds", "windows"}`` where ``payloads`` is
    the per-shard ``finish()`` results in shard order and
    ``window_log`` is ``[{"window", "until", "reports"}, ...]`` with
    the reports in shard order.  ``wall_seconds`` covers only the
    granted execution (build/spawn excluded, matching the sequential
    bench's measured loop); ``total_seconds`` includes process start
    and shard build.
    """
    if not specs:
        raise ValueError("run_partitioned needs at least one shard spec")
    boundaries = _window_boundaries(horizon, windows)
    workers = max(1, min(int(workers), len(specs)))
    if workers == 1:
        return _run_lockstep(specs, factory, boundaries, opt_flags)
    return _run_processes(specs, factory, boundaries, workers, opt_flags)


def _run_lockstep(specs, factory, boundaries, opt_flags) -> dict:
    """Single-process debug mode: same windows, shard-order interleave."""
    if opt_flags:
        from ...opt import OPTIMIZATIONS
        for name, value in opt_flags.items():
            setattr(OPTIMIZATIONS, name, value)
    build_started = time.perf_counter()  # repro: noqa[wall-clock]
    shards = [factory(spec) for spec in specs]
    started = time.perf_counter()  # repro: noqa[wall-clock]
    window_log = []
    for window, until in enumerate(boundaries, start=1):
        reports = [shard.advance(window, until) for shard in shards]
        window_log.append({"window": window, "until": until,
                           "reports": reports})
    payloads = [shard.finish() for shard in shards]
    finished = time.perf_counter()  # repro: noqa[wall-clock]
    return {
        "payloads": payloads,
        "window_log": window_log,
        "mode": "lockstep",
        "workers": 1,
        "windows": len(boundaries),
        "wall_seconds": finished - started,
        "total_seconds": finished - build_started,
    }


def _run_processes(specs, factory, boundaries, workers, opt_flags) -> dict:
    """Multiprocess mode: shards dealt round-robin onto worker pipes."""
    context = _mp_context()
    assignments = [specs[index::workers] for index in range(workers)]
    spawn_started = time.perf_counter()  # repro: noqa[wall-clock]
    connections = []
    processes = []
    try:
        for chunk in assignments:
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main,
                args=(child_conn, factory, chunk, dict(opt_flags or {})),
                daemon=True)
            process.start()
            child_conn.close()
            connections.append(parent_conn)
            processes.append(process)

        shard_order = [spec.shard_id for chunk in assignments
                       for spec in chunk]
        for conn in connections:
            _expect(conn, "ready")

        started = time.perf_counter()  # repro: noqa[wall-clock]
        window_log = []
        for window, until in enumerate(boundaries, start=1):
            for conn in connections:
                conn.send(("advance", window, until))
            reports = []
            for conn in connections:
                reports.extend(_expect(conn, "window"))
            window_log.append({
                "window": window, "until": until,
                "reports": _in_shard_order(reports, shard_order),
            })
        for conn in connections:
            conn.send(("finish",))
        payloads = []
        for conn in connections:
            payloads.extend(_expect(conn, "done"))
        payloads = _in_shard_order(payloads, shard_order)
        finished = time.perf_counter()  # repro: noqa[wall-clock]
        for conn in connections:
            conn.send(("stop",))
        for process in processes:
            process.join(timeout=30)
    finally:
        for conn in connections:
            conn.close()
        for process in processes:
            if process.is_alive():  # pragma: no cover - error cleanup
                process.terminate()
                process.join(timeout=5)
    return {
        "payloads": payloads,
        "window_log": window_log,
        "mode": "processes",
        "workers": workers,
        "windows": len(boundaries),
        "wall_seconds": finished - started,
        "total_seconds": finished - spawn_started,
    }


def _expect(conn, kind: str):
    message = conn.recv()
    if message[0] == "error":
        raise ParallelExecutionError(
            f"shard worker failed:\n{message[1]}")
    if message[0] != kind:  # pragma: no cover - protocol misuse
        raise ParallelExecutionError(
            f"expected {kind!r} from worker, got {message[0]!r}")
    return message[1]


def _in_shard_order(items: list, shard_order: list) -> list:
    """Canonical shard order regardless of worker assignment.

    Window reports and payloads carry their shard id (dicts with a
    ``"shard"`` key); sorting on it makes the merged stream independent
    of how shards were dealt onto workers.
    """
    del shard_order  # the id on each item is authoritative
    return sorted(items, key=lambda item: item["shard"])
