"""Discrete-event simulation kernel.

Every subsystem in this reproduction (networks, radios, devices, servers)
runs on top of this kernel.  The design follows the classic
process-interaction style: a *process* is a Python generator that yields
:class:`Event` objects; the :class:`Simulator` advances virtual time and
resumes processes when the events they wait on fire.

The kernel is intentionally self-contained (no third-party dependency)
so the rest of the library has a single, fully-controlled notion of
time, scheduling and interruption.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(env):
...     yield env.timeout(5)
...     log.append(env.now)
>>> _ = sim.spawn(worker(sim))
>>> sim.run()
>>> log
[5.0]
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from .sched import make_scheduler

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "Simulator",
    "AllOf",
    "AnyOf",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (e.g. running a finished simulator)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*, may be *triggered* with a value (success)
    or *failed* with an exception, and once processed resumes every
    process that was waiting on it.

    ``__slots__`` matters here: events are the single most-allocated
    object in any run (every timeout, packet delivery and process wakeup
    is one), and dropping the per-instance ``__dict__`` is a measurable
    slice of total wall-clock.  Subclasses outside the kernel that need
    ad-hoc attributes (e.g. :class:`repro.sim.resources.Request` with
    its priority tag) simply omit ``__slots__`` and regain a dict.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_order",
                 "_cancelled")

    PENDING = "pending"
    TRIGGERED = "triggered"
    PROCESSED = "processed"

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._state = Event.PENDING
        # Monotonic processing index stamped by Simulator.step(); None
        # until the event is processed (or when forged in tests).
        self._order: Optional[int] = None
        # Lazy-deletion tombstone: a cancelled event's queue entry is
        # dropped (not dispatched, not counted) when a pop reaches it.
        self._cancelled = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state != Event.PENDING

    @property
    def processed(self) -> bool:
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == Event.PENDING:
            raise SimulationError("event value read before trigger")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != Event.PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._state = Event.TRIGGERED
        # Inlined Simulator._schedule(self) for the delay-0 priority-1
        # case — this is the single hottest call site in any run.
        sim = self.sim
        sim._push_now(sim.now, next(sim._seq), self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exception``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = Event.TRIGGERED
        self.sim._schedule(self)
        return self

    def _mark_processed(self) -> None:
        self._state = Event.PROCESSED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._state} at t={self.sim.now}>"


# Module-level alias so the run() hot loop marks events processed
# without re-resolving the class attribute per event.
_PROCESSED = Event.PROCESSED


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay.

    The constructor is the kernel's hottest allocation site, so it
    writes every slot exactly once instead of chaining through
    ``Event.__init__`` (which would first write the pending defaults
    only for them to be overwritten) and inlines the schedule push.
    The observable behaviour — entry layout, sequence numbering,
    processing order — is identical to the generic path.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        delay = float(delay)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = Event.TRIGGERED
        self._order = None
        self._cancelled = False
        if delay == 0.0:
            sim._push_now(sim.now, next(sim._seq), self)
        else:
            sim._push(sim.now + delay, 1, next(sim._seq), self)

    def cancel(self) -> None:
        """Revoke the timeout before it fires.

        The queue entry is not hunted down; the event is tombstoned and
        the scheduler drops the entry — without dispatching callbacks or
        counting it as processed — whenever a pop or peek reaches it.
        Cancelling an already-processed (or already-cancelled) timeout
        is a no-op, so callers can cancel unconditionally.
        """
        if self._cancelled or self._state == Event.PROCESSED:
            return
        self._cancelled = True
        self.sim._sched.tombstones += 1


class Process(Event):
    """A running generator; also an event that fires when it terminates.

    The generator yields :class:`Event` instances.  When a yielded event
    succeeds, the event's value is sent back into the generator; when it
    fails, the exception is thrown into the generator.
    """

    __slots__ = ("generator", "name", "_target")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Bootstrap: resume the process at the current time.
        init = Event(sim)
        init._ok = True
        init._state = Event.TRIGGERED
        init.callbacks.append(self._resume)
        sim._schedule(init)

    @property
    def is_alive(self) -> bool:
        return self._state == Event.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        err = Event(self.sim)
        err._ok = False
        err._value = Interrupt(cause)
        err._state = Event.TRIGGERED
        err.callbacks.append(self._resume)
        # Detach from whatever the process was waiting on.
        target = self._target
        if target is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        if (
            isinstance(target, _Condition)
            and not target.triggered
            and not target.callbacks
        ):
            # Nobody else waits on the condition: detach its _on_child
            # callbacks so the children don't keep a dead waiter alive.
            target.cancel()
        self._target = None
        self.sim._schedule(err, priority=0)

    def _resume(self, event: Event) -> None:
        profiler = self.sim._profiler
        if profiler is not None:
            profiler.on_resume(self)
        self._target = None
        self.sim._active_process = self
        try:
            if event._ok:
                result = self.generator.send(event._value)
            else:
                result = self.generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:  # repro: noqa[broad-except] kernel trampoline
            # The process trampoline is the one place every escaped
            # exception must be routed into Event.fail / strict re-raise.
            self.sim._active_process = None
            if not self.triggered:
                if self.sim.strict:
                    raise
                self.fail(exc)
                return
            raise
        self.sim._active_process = None
        if not isinstance(result, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {result!r}, expected an Event"
            )
        if result.sim is not self.sim:
            raise SimulationError("process yielded an event from another simulator")
        self._target = result
        if result._state == Event.PROCESSED:
            # Already-processed events resume the process immediately.
            relay = Event(self.sim)
            relay._ok = result._ok
            relay._value = result._value
            relay._state = Event.TRIGGERED
            relay.callbacks.append(self._resume)
            self.sim._schedule(relay)
        else:
            result.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different sims")
        self._pending = sum(1 for ev in self.events if not ev.processed)
        if self._check_immediate():
            return
        for ev in self.events:
            if not ev.processed:
                ev.callbacks.append(self._on_child)

    def _check_immediate(self) -> bool:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}

    def cancel(self) -> None:
        """Detach this condition from its children (stale-callback cleanup
        when the waiting process is interrupted)."""
        for ev in self.events:
            if self._on_child in ev.callbacks:
                ev.callbacks.remove(self._on_child)


def _first_fired(events: list[Event]) -> Event:
    """The event that was processed earliest, by the kernel's processing
    index; falls back to list order for events forged without one."""
    ordered = [ev for ev in events if ev._order is not None]
    if ordered:
        return min(ordered, key=lambda ev: ev._order)
    return events[0]


class AllOf(_Condition):
    """Fires when every child event has fired; value maps event -> value."""

    __slots__ = ()

    def _check_immediate(self) -> bool:
        # A child that already failed-and-processed must fail the
        # composite immediately — succeeding with a partial value dict
        # (the pre-fix behaviour) silently swallowed the error.
        failed = [ev for ev in self.events if ev.processed and not ev._ok]
        if failed:
            self.fail(_first_fired(failed)._value)
            return True
        if self._pending == 0:
            self.succeed(self._collect())
            return True
        return False

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first child event fires; value maps event -> value."""

    __slots__ = ()

    def _check_immediate(self) -> bool:
        done = [ev for ev in self.events if ev.processed]
        if done:
            # "First" means first *fired*, not first in argument order:
            # the processing index makes the winner deterministic no
            # matter how the caller ordered the list.
            first = _first_fired(done)
            if first._ok:
                self.succeed(self._collect())
            else:
                self.fail(first._value)
            return True
        if not self.events:
            self.succeed({})
            return True
        return False

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok:
            self.succeed(self._collect())
        else:
            self.fail(event._value)


class Simulator:
    """The event loop over a pluggable scheduler of
    (time, priority, seq, event) entries.

    ``strict`` controls error propagation from processes nobody waits
    on: when True (the default) an uncaught exception inside a process
    aborts :meth:`run`, which is almost always what a test wants.

    ``scheduler`` names the queue implementation (see
    :mod:`repro.sim.sched`): ``"heap"`` for the reference binary heap,
    ``"calendar"`` for the calendar queue, ``None`` for the process
    default.  Both dispatch events in the identical total order — the
    A/B guard in ``repro.perf`` holds them to byte-identical runs.
    """

    def __init__(self, strict: bool = True,
                 scheduler: Optional[str] = None):
        self.now: float = 0.0
        self.strict = strict
        self._sched = make_scheduler(scheduler)
        # Bound-method caches for the two push entry points: triggering
        # is the kernel's hottest path and the scheduler never changes
        # after construction.
        self._push_now = self._sched.push_now
        self._push = self._sched.push
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        # Observability attachment points (duck-typed so the kernel never
        # imports repro.obs): a repro.obs Tracer and KernelProfiler hang
        # here when installed; both default to None and the disabled
        # path costs one attribute check.
        self.tracer: Any = None
        self._profiler: Any = None
        # Same duck-typed pattern for the commutativity sanitizer
        # (repro.analysis.races.BatchSanitizer): when installed it sees
        # every popped batch (and may reorder it for flip replays) plus
        # every dispatched entry.  None by default; the disabled path
        # costs one hoisted attribute check per run().
        self._sanitizer: Any = None
        # Number of events processed so far; doubles as the processing
        # index stamped onto each event (a plain int so callers can read
        # it without a profiler installed).  Tombstoned (cancelled)
        # entries are dropped without touching this counter.
        self.events_processed: int = 0

    @property
    def scheduler_name(self) -> str:
        """Which scheduler this simulator runs on ("heap"/"calendar")."""
        return self._sched.name

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    # Alias familiar to SimPy users.
    process = spawn

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        if delay == 0.0 and priority == 1:
            # The dominant push: an event triggered at the current
            # instant.  Schedulers keep an O(1) fast lane for it.
            self._push_now(self.now, next(self._seq), event)
        else:
            self._push(self.now + delay, priority,
                       next(self._seq), event)

    def peek(self) -> float:
        """Time of the next *live* scheduled event, or +inf if none.

        Tombstoned (cancelled) entries are dropped on the way, so the
        answer is the time :meth:`step` would actually advance to.
        """
        return self._sched.peek_time()

    def queue_depth(self) -> int:
        """Number of live (non-tombstoned) pending events."""
        return self._sched.live_count()

    def step(self) -> None:
        """Process exactly one event."""
        entry = self._sched.pop_one()
        if entry is None:
            raise SimulationError("step() on an empty schedule")
        time, _, _, event = entry
        if time < self.now:
            raise SimulationError("time went backwards")
        self.now = time
        if self._sanitizer is not None:
            # A single step is a batch of one; keeps the sanitizer's
            # batch ordinals aligned with run()-driven dispatch.
            self._sanitizer.on_batch(time, [entry])
            self._sanitizer.on_event(entry)
        event._order = self.events_processed
        self.events_processed += 1
        if self._profiler is not None:
            self._profiler.on_event(self.now, event,
                                    self._sched.live_count())
        callbacks, event.callbacks = event.callbacks, []
        event._mark_processed()
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or ``until`` is reached.

        Dispatch is batched: the scheduler hands over every event
        sharing the earliest timestamp in one ``pop_batch`` call and
        the loop drains the batch without re-entering the queue
        structure.  Two rare cases re-involve the scheduler mid-batch:

        * an *interrupt* (priority 0) scheduled by a batch callback
          sorts before the remaining priority-1 batch entries, so the
          loop watches the scheduler's ``urgent_pending`` flag and
          requeues the unconsumed tail when it trips;
        * an entry *cancelled* by an earlier batch callback is skipped
          where it lies, with the tombstone count rebalanced.

        The observable sequence of state changes per event (time check,
        ``now`` advance, order stamp, profiler hook, callback drain) is
        exactly :meth:`step`'s, so single-stepping and running are
        indistinguishable to everything above the kernel — whichever
        scheduler is installed.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        sched = self._sched
        pop_batch = sched.pop_batch
        sanitizer = self._sanitizer
        while True:
            batch = pop_batch(until)
            if not batch:
                break
            time = batch[0][0]
            if time < self.now:
                raise SimulationError("time went backwards")
            self.now = time
            if sanitizer is not None:
                # The sanitizer closes the previous batch's read/write
                # sets and may return a reordered batch (flip replay).
                batch = sanitizer.on_batch(time, batch)
            index = 0
            size = len(batch)
            while index < size:
                entry = batch[index]
                if sched.urgent_pending and entry[1] >= 1:
                    # An interrupt arrived mid-batch; it outranks every
                    # unconsumed priority-1 entry at this timestamp.
                    sched.requeue(batch[index:])
                    break
                index += 1
                event = entry[3]
                if event._cancelled:
                    # Cancelled after extraction; rebalance the count
                    # Timeout.cancel() charged to the scheduler.
                    sched.tombstones -= 1
                    continue
                if sanitizer is not None:
                    sanitizer.on_event(entry)
                event._order = self.events_processed
                self.events_processed += 1
                if self._profiler is not None:
                    self._profiler.on_event(
                        time, event, sched.live_count() + (size - index))
                callbacks = event.callbacks
                event.callbacks = []
                event._state = _PROCESSED
                for callback in callbacks:
                    callback(event)
        if until is not None:
            self.now = until
