"""Measurement utilities: counters, time series, latency statistics.

Benchmarks and tests observe the simulated system exclusively through
these collectors, which keeps instrumentation out of the protocol code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Counter", "TimeSeries", "StatSummary", "LatencyRecorder", "Trace"]


class Counter:
    """A monotonically growing named counter set."""

    def __init__(self):
        self._counts: dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self._counts!r})"


class TimeSeries:
    """(time, value) samples with integration helpers."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series must be recorded in time order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def rate(self) -> float:
        """Total value divided by the observed time span."""
        if len(self.times) < 2:
            return 0.0
        span = self.times[-1] - self.times[0]
        if span <= 0:
            return 0.0
        return sum(self.values) / span

    def time_weighted_mean(self) -> float:
        """Mean of a step function sampled at change points."""
        if len(self.times) < 2:
            return self.mean()
        area = 0.0
        for i in range(len(self.times) - 1):
            area += self.values[i] * (self.times[i + 1] - self.times[i])
        span = self.times[-1] - self.times[0]
        return area / span if span > 0 else self.mean()


@dataclass
class StatSummary:
    """Summary statistics over a sample set."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @staticmethod
    def of(samples: list[float]) -> "StatSummary":
        if not samples:
            return StatSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        n = len(ordered)
        mean = sum(ordered) / n
        # Sample (Bessel-corrected) variance: these are samples of an
        # open-ended process, not the whole population.  n == 1 carries
        # no spread information, so its stdev is 0 by convention.
        if n > 1:
            var = sum((x - mean) ** 2 for x in ordered) / (n - 1)
        else:
            var = 0.0
        return StatSummary(
            count=n,
            mean=mean,
            stdev=math.sqrt(var),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
        )


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted list."""
    if not ordered:
        return 0.0
    idx = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[idx]


class LatencyRecorder:
    """Start/stop latency measurement keyed by an arbitrary token."""

    def __init__(self):
        self._open: dict[Any, float] = {}
        self.samples: list[float] = []

    def start(self, token: Any, now: float) -> None:
        self._open[token] = now

    def stop(self, token: Any, now: float) -> Optional[float]:
        """Close the measurement for ``token``; returns the latency."""
        begin = self._open.pop(token, None)
        if begin is None:
            return None
        latency = now - begin
        self.samples.append(latency)
        return latency

    @property
    def in_flight(self) -> int:
        return len(self._open)

    def summary(self) -> StatSummary:
        return StatSummary.of(self.samples)


@dataclass
class Trace:
    """An append-only structured event log.

    ``max_entries`` bounds memory on long runs: when set, the oldest
    entries are discarded first and ``dropped`` counts the loss.
    """

    entries: list[tuple[float, str, dict]] = field(default_factory=list)
    enabled: bool = True
    max_entries: Optional[int] = None
    dropped: int = 0

    def log(self, time: float, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self.entries.append((time, kind, fields))
        if self.max_entries is not None and len(self.entries) > self.max_entries:
            overflow = len(self.entries) - self.max_entries
            del self.entries[:overflow]
            self.dropped += overflow

    def of_kind(self, kind: str) -> list[tuple[float, str, dict]]:
        return [e for e in self.entries if e[1] == kind]

    def __len__(self) -> int:
        return len(self.entries)
