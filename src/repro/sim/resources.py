"""Shared-resource primitives built on the simulation kernel.

Three primitives cover everything the stack needs:

* :class:`Resource` — a counted semaphore with FIFO queuing (radio
  channels, server worker pools, circuit-switched trunks).
* :class:`Store` — an unbounded-or-bounded FIFO of Python objects
  (packet queues, mailboxes).
* :class:`Channel` — a Store with a fixed per-item transfer delay,
  convenient for simple pipes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .kernel import Event, Simulator, SimulationError

__all__ = ["Request", "Resource", "PriorityResource", "Store", "Channel"]


class Request(Event):
    """Pending acquisition of one resource slot.

    Use as ``yield res.request()`` and later ``res.release(req)``.
    Cancelling before the grant (e.g. after a timeout race) is done via
    :meth:`cancel`.
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw the request (no-op if already granted)."""
        if not self.triggered:
            try:
                self.resource._waiting.remove(self)
            except ValueError:
                pass


class Resource:
    """A counted resource with ``capacity`` slots and a FIFO wait queue."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        # Deque so the FIFO grant in release() is O(1); cancel() still
        # removes from the middle (deque.remove raises ValueError like
        # list.remove, which cancel() already expects).
        self._waiting: Deque[Request] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        req = Request(self)
        if self.in_use < self.capacity:
            self.in_use += 1
            req.succeed(self)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        if request.resource is not self:
            raise SimulationError("release() of a foreign request")
        if self.in_use <= 0:
            raise SimulationError("release() with nothing in use")
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.succeed(self)
        else:
            self.in_use -= 1


class PriorityResource(Resource):
    """A Resource whose wait queue grants lower ``priority`` values first.

    Ties break FIFO.  Used by 3G cells for QoS: conversational traffic
    (priority 0) gets airtime ahead of background transfers.
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        super().__init__(sim, capacity=capacity)
        self._seq = 0

    def request(self, priority: int = 10) -> Request:
        req = Request(self)
        req.priority = priority
        self._seq += 1
        req._seq = self._seq
        if self.in_use < self.capacity:
            self.in_use += 1
            req.succeed(self)
        else:
            self._waiting.append(req)
            # Deques have no sort(); rebuild.  The queue is short (it
            # only holds waiters beyond capacity) and sorted() is stable,
            # so the (priority, arrival-seq) order is preserved exactly.
            self._waiting = deque(sorted(
                self._waiting,
                key=lambda r: (getattr(r, "priority", 10),
                               getattr(r, "_seq", 0)),
            ))
        return req


class Store:
    """FIFO object store; ``get`` blocks until an item is available."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Insert ``item``; blocks (pending event) while the store is full."""
        ev = Event(self.sim)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed()
        elif not self.is_full:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.is_full:
            return False
        self.items.append(item)
        return True

    def get(self) -> Event:
        """Remove and return the oldest item (event value)."""
        ev = Event(self.sim)
        if self.items:
            ev.succeed(self.items.popleft())
            self._drain_putters()
        elif self._putters:
            put_ev, item = self._putters.popleft()
            put_ev.succeed()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if self.items:
            item = self.items.popleft()
            self._drain_putters()
            return True, item
        return False, None

    def _drain_putters(self) -> None:
        while self._putters and not self.is_full:
            put_ev, item = self._putters.popleft()
            self.items.append(item)
            put_ev.succeed()


class Channel:
    """A unidirectional pipe with a fixed per-item latency."""

    def __init__(self, sim: Simulator, delay: float = 0.0,
                 capacity: Optional[int] = None):
        if delay < 0:
            raise ValueError(f"negative channel delay: {delay}")
        self.sim = sim
        self.delay = delay
        self.store = Store(sim, capacity=capacity)

    def send(self, item: Any) -> Event:
        """Deliver ``item`` into the channel after ``delay`` time units."""
        done = Event(self.sim)

        def _deliver(env=self.sim, item=item, done=done):
            yield env.timeout(self.delay)
            yield self.store.put(item)
            done.succeed()

        self.sim.spawn(_deliver(), name="channel-send")
        return done

    def recv(self) -> Event:
        """Event yielding the next delivered item."""
        return self.store.get()
