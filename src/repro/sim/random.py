"""Deterministic random streams for reproducible simulations.

Every stochastic element (radio loss, user think time, mobility) draws
from a named :class:`RandomStream` obtained from a :class:`SeedBank`.
Two runs with the same root seed produce identical traces regardless of
the order in which subsystems are constructed, because each stream's
seed is derived from the root seed and the stream *name*, not from a
shared sequence.
"""

from __future__ import annotations

import hashlib
import random as _pyrandom

__all__ = ["RandomStream", "SeedBank"]


class RandomStream:
    """A named, independently-seeded random generator."""

    def __init__(self, name: str, seed: int):
        self.name = name
        self.seed = seed
        self._rng = _pyrandom.Random(seed)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._rng.uniform(low, high)

    def random(self) -> float:
        return self._rng.random()

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival with the given rate (1/mean)."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def choice(self, seq):
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def sample(self, population, k: int):
        return self._rng.sample(population, k)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of [0,1]: {probability}")
        return self._rng.random() < probability

    def bytes(self, n: int) -> bytes:
        return self._rng.randbytes(n)


class SeedBank:
    """Derives independent :class:`RandomStream` objects from a root seed."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode()
            ).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = RandomStream(name, seed)
        return self._streams[name]

    def fork(self, name: str) -> "SeedBank":
        """A child bank whose streams are independent of this bank's."""
        digest = hashlib.sha256(f"{self.root_seed}/{name}".encode()).digest()
        return SeedBank(int.from_bytes(digest[:8], "big"))
