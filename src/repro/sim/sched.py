"""Pluggable event schedulers for the simulation kernel.

The kernel's total order over scheduled events is the tuple
``(time, priority, seq)``: virtual time first, then priority (0 for
interrupts, 1 for everything else), then a global monotonic sequence
number that makes every key unique and same-time dispatch FIFO.  A
scheduler stores ``(time, priority, seq, event)`` entries and hands
them back in exactly that order; which data structure does the storing
is what this module makes pluggable.

Two implementations ship:

* :class:`HeapScheduler` — the original flat binary heap
  (``heapq``).  O(log n) per operation, fully general, and the
  reference the A/B determinism guard compares against.
* :class:`CalendarScheduler` — a calendar queue (bucketed time wheel,
  Brown 1988) specialised for this simulation's event mix.  The huge
  majority of pushes are *immediate* (an event triggered at the current
  instant: process resumes, Store handoffs, condition fires); those go
  to a plain FIFO deque because the global sequence number already
  sorts them.  Real future timeouts go to the wheel, whose bucket
  width and count recalibrate automatically as the pending population
  grows and shrinks.  Interrupts (priority 0) are rare and keep a tiny
  private heap.

Both schedulers share the tombstone convention for cancelled
timeouts: :meth:`repro.sim.kernel.Timeout.cancel` marks the event and
bumps ``scheduler.tombstones`` instead of hunting the entry down.  Dead
entries are dropped — uncounted, without running callbacks — the moment
any pop or peek reaches them, so ``live_count`` and
:meth:`Simulator.peek` describe only events that will actually fire.

The module-level default (used by every ``Simulator()`` constructed
without an explicit choice) is the calendar queue; ``--scheduler
heap|calendar`` on the bench CLI and :func:`scheduler_override` select
per-run, and ``repro.perf.scheduler_check`` holds the two to
byte-identical results.
"""

from __future__ import annotations

# The one sanctioned heapq import site for event scheduling — see the
# direct-heapq lint rule in repro.analysis.rules.perf.
import heapq
from contextlib import contextmanager
from typing import Any, Iterable, Optional

__all__ = [
    "Scheduler",
    "HeapScheduler",
    "CalendarScheduler",
    "SCHEDULERS",
    "DEFAULT_SCHEDULER",
    "make_scheduler",
    "default_scheduler",
    "set_default_scheduler",
    "scheduler_override",
]

_INF = float("inf")


class Scheduler:
    """Interface every kernel scheduler implements.

    Entries are ``(time, priority, seq, event)`` tuples; the scheduler
    never inspects the event beyond its ``_cancelled`` flag.  The
    ``urgent_pending`` attribute is the batched-dispatch handshake: it
    is set whenever a priority != 1 entry is pushed, so the kernel can
    notice mid-batch that an interrupt arrived and must preempt the
    remaining same-time batch entries (see ``Simulator.run``); the next
    ``pop_batch`` clears it.
    """

    name = "base"

    #: Cancelled-but-not-yet-dropped entries (see Timeout.cancel).
    tombstones: int

    def push(self, time: float, priority: int, seq: int, event: Any) -> None:
        """Insert a general entry (any priority, any future time)."""
        raise NotImplementedError

    def push_now(self, time: float, seq: int, event: Any) -> None:
        """Fast path: priority-1 entry at the current instant."""
        raise NotImplementedError

    def pop_batch(self, until: Optional[float]) -> list:
        """All live entries sharing the earliest time, in order.

        Returns ``[]`` when nothing is pending or the earliest live
        entry lies beyond ``until``.  Cancelled entries encountered on
        the way are dropped silently (tombstone bookkeeping included).

        The batch is also the unit of the commutativity contract: the
        entries share a timestamp with no intra-batch causal edge
        through the kernel, so a parallel core may dispatch them
        concurrently only if they commute.  The race sanitizer
        (``repro.analysis.races``) hooks :meth:`Simulator.run` right
        after this call to record per-entry read/write sets and — on
        replay — hand back the batch in flipped order to prove or
        refute a flagged hazard.
        """
        raise NotImplementedError

    def pop_one(self) -> Optional[tuple]:
        """The single earliest live entry, or None when empty."""
        raise NotImplementedError

    def requeue(self, entries: list) -> None:
        """Put back the unconsumed tail of a batch (urgent preemption)."""
        raise NotImplementedError

    def peek_time(self) -> float:
        """Earliest live entry's time, or +inf; drops leading tombstones."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Raw entry count, tombstones included."""
        raise NotImplementedError

    def live_count(self) -> int:
        """Entries that will actually dispatch (raw minus tombstones)."""
        return len(self) - self.tombstones


class HeapScheduler(Scheduler):
    """The reference scheduler: one flat binary heap, exactly the
    pre-refactor kernel's data structure plus tombstone skipping."""

    name = "heap"

    def __init__(self):
        self._heap: list = []
        self.tombstones = 0
        self.urgent_pending = False

    def push(self, time: float, priority: int, seq: int, event: Any) -> None:
        heapq.heappush(self._heap, (time, priority, seq, event))
        if priority != 1:
            self.urgent_pending = True

    def push_now(self, time: float, seq: int, event: Any) -> None:
        heapq.heappush(self._heap, (time, 1, seq, event))

    def pop_batch(self, until: Optional[float]) -> list:
        self.urgent_pending = False
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            if heap[0][3]._cancelled:
                heappop(heap)
                self.tombstones -= 1
                continue
            time = heap[0][0]
            if until is not None and time > until:
                return []
            batch = [heappop(heap)]
            while heap and heap[0][0] == time:
                entry = heappop(heap)
                if entry[3]._cancelled:
                    self.tombstones -= 1
                else:
                    batch.append(entry)
            return batch
        return []

    def pop_one(self) -> Optional[tuple]:
        self.urgent_pending = False
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[3]._cancelled:
                self.tombstones -= 1
                continue
            return entry
        return None

    def requeue(self, entries: list) -> None:
        for entry in entries:
            heapq.heappush(self._heap, entry)

    def peek_time(self) -> float:
        heap = self._heap
        while heap:
            if heap[0][3]._cancelled:
                heapq.heappop(heap)
                self.tombstones -= 1
                continue
            return heap[0][0]
        return _INF

    def __len__(self) -> int:
        return len(self._heap)


class CalendarScheduler(Scheduler):
    """Calendar queue with an immediate-FIFO fast lane.

    Three internal lanes, merged head-to-head on pop:

    * ``_now`` — a deque of priority-1 entries pushed *at* the current
      instant.  Because virtual time never decreases and the sequence
      counter is globally monotonic, appends arrive already sorted, so
      both push and pop are O(1).  This lane absorbs the majority of
      kernel traffic (every ``Event.succeed``, process bootstrap and
      Store handoff).
    * ``_urgent`` — a small heap for priority != 1 entries
      (interrupts).  Rare, so the heap never grows past a handful.
    * the wheel — ``_buckets[day & mask]`` holds future priority-1
      entries (timeouts).  Buckets are unsorted until first visited,
      then sorted *descending* once (C timsort) so consuming the
      minimum is ``list.pop()`` from the tail.  ``day`` is
      ``int(time / width)``; an entry is eligible only in its own day,
      which keeps next-year entries (same bucket, ``day + n*buckets``)
      waiting exactly where the sort left them — at the front.

    The wheel resizes (doubling/halving the power-of-two bucket count)
    when its population crosses 2x/0.25x the bucket count, and
    recalibrates the bucket width to ~3x the mean gap between a sample
    of pending timeouts — the classic calendar-queue tuning for O(1)
    amortized behaviour.  A cached minimum key makes repeated peeks of
    a sparse far-future wheel O(1) between pops.
    """

    name = "calendar"

    #: Bounds for the wheel geometry.
    MIN_BUCKETS = 64
    MAX_BUCKETS = 1 << 16
    MIN_WIDTH = 1e-9

    def __init__(self, buckets: int = 256, width: float = 0.05):
        if buckets < 1 or buckets & (buckets - 1):
            raise ValueError(f"buckets must be a power of two: {buckets}")
        if width <= 0:
            raise ValueError(f"bucket width must be positive: {width}")
        self._now: list = []          # deque semantics via index cursor
        self._now_head = 0
        self._urgent: list = []
        self._nb = buckets
        self._mask = buckets - 1
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets: list[list] = [[] for _ in range(buckets)]
        self._dirty = bytearray(buckets)
        self._wheel_total = 0
        self._cur_day = 0
        # Cached (entry, day) of the wheel's minimum; None = unknown.
        # The full 4-tuple is cached (not a sliced key): sequence
        # numbers are globally unique, so ordered comparisons never
        # reach the event object in position 3.
        self._min_entry: Optional[tuple] = None
        self._min_day = 0
        self.tombstones = 0
        self.urgent_pending = False

    # -- pushes ----------------------------------------------------------
    def push_now(self, time: float, seq: int, event: Any) -> None:
        self._now.append((time, 1, seq, event))

    def push(self, time: float, priority: int, seq: int, event: Any) -> None:
        if priority != 1:
            heapq.heappush(self._urgent, (time, priority, seq, event))
            self.urgent_pending = True
            return
        self._wheel_push((time, 1, seq, event))

    def _wheel_push(self, entry: tuple) -> None:
        day = int(entry[0] * self._inv_width)
        index = day & self._mask
        self._buckets[index].append(entry)
        self._dirty[index] = 1
        self._wheel_total += 1
        min_entry = self._min_entry
        if min_entry is not None and entry < min_entry:
            self._min_entry = entry
            self._min_day = day
        if self._wheel_total > 2 * self._nb and self._nb < self.MAX_BUCKETS:
            self._resize(self._nb * 2)

    # -- wheel internals -------------------------------------------------
    def _bucket_min(self, index: int) -> Optional[tuple]:
        """Smallest entry in a bucket (sorts it descending on demand)."""
        bucket = self._buckets[index]
        if not bucket:
            return None
        if self._dirty[index]:
            bucket.sort(reverse=True)
            self._dirty[index] = 0
        return bucket[-1]

    def _wheel_min(self) -> Optional[tuple]:
        """The wheel's earliest entry, walking from the current day;
        caches the answer until that entry is popped."""
        if self._wheel_total == 0:
            return None
        if self._min_entry is not None:
            return self._min_entry
        nb = self._nb
        mask = self._mask
        buckets = self._buckets
        dirty = self._dirty
        inv_width = self._inv_width
        day = self._cur_day
        for steps in range(nb):
            index = day & mask
            bucket = buckets[index]
            entry = None
            if bucket:
                if dirty[index]:
                    bucket.sort(reverse=True)
                    dirty[index] = 0
                entry = bucket[-1]
            if entry is not None and int(entry[0] * inv_width) == day:
                if steps > 32 and self._wheel_total >= 8:
                    # The walk crossed a long run of empty days: the
                    # bucket width is mis-calibrated for the pending
                    # population (which can stay at a stable size and
                    # so never trigger the population-driven resize).
                    # Re-bucket at the same size to recalibrate.
                    self._resize(nb)
                self._min_entry = entry
                self._min_day = int(entry[0] * self._inv_width)
                return entry
            day += 1
        # A full revolution found nothing in-year: the population is
        # sparse and far away.  Direct scan over every bucket tail.
        best = None
        for index in range(nb):
            entry = self._bucket_min(index)
            if entry is not None and (best is None or entry < best):
                best = entry
        if self._wheel_total >= 8:
            self._resize(nb)
        self._min_entry = best
        self._min_day = int(best[0] * self._inv_width)
        return best

    def _wheel_pop_min(self, advance: bool) -> tuple:
        """Remove and return the wheel's earliest entry (min must be
        cached or computable; caller checks the wheel is non-empty).

        ``advance`` moves the search cursor to the popped entry's day.
        That is only sound for a *dispatched* pop, where the kernel
        immediately advances virtual time to the entry's timestamp, so
        every later push lands at or past the cursor.  Tombstone drops
        and peeks must pass False: they can reach far-future entries
        while virtual time is still small, and advancing would strand
        subsequently pushed nearer-term entries behind the cursor.
        """
        if self._min_entry is None:
            self._wheel_min()
        min_day = self._min_day
        index = min_day & self._mask
        bucket = self._buckets[index]
        # Appends since the min was cached leave the bucket dirty; the
        # cached *entry* stays correct (pushes update it) but it is
        # only at the tail after a re-sort.
        if self._dirty[index]:
            bucket.sort(reverse=True)
            self._dirty[index] = 0
        entry = bucket.pop()
        if advance:
            self._cur_day = min_day
        self._wheel_total -= 1
        # Incremental min maintenance: the just-sorted bucket's new tail
        # is the wheel's next minimum whenever it still lies in the same
        # day (every other bucket holds later days only).  This keeps
        # runs of wheel pops O(1) instead of re-walking per pop.
        if bucket and int(bucket[-1][0] * self._inv_width) == min_day:
            self._min_entry = bucket[-1]
        else:
            self._min_entry = None
        if self._wheel_total < self._nb // 4 and self._nb > self.MIN_BUCKETS:
            self._resize(self._nb // 2)
        return entry

    def _resize(self, buckets: int) -> None:
        """Re-bucket every entry into ``buckets`` buckets, recalibrating
        the width from the pending population's time spread."""
        entries = [entry for bucket in self._buckets for entry in bucket]
        self._nb = buckets
        self._mask = buckets - 1
        self._width = self._calibrate_width(entries)
        self._inv_width = 1.0 / self._width
        self._buckets = [[] for _ in range(buckets)]
        self._dirty = bytearray(buckets)
        mask = self._mask
        inv_width = self._inv_width
        for entry in entries:
            index = int(entry[0] * inv_width) & mask
            self._buckets[index].append(entry)
            self._dirty[index] = 1
        self._min_entry = None
        if entries:
            # cur_day must not sit past the earliest entry's day.
            self._cur_day = min(int(entry[0] * inv_width)
                                for entry in entries)

    def _calibrate_width(self, entries: list) -> float:
        """Bucket width ~= 3x the mean inter-event gap of a sample,
        the classic calendar-queue rule; falls back to the current
        width when the sample is degenerate."""
        if len(entries) < 2:
            return self._width
        sample = entries if len(entries) <= 1024 else entries[:1024]
        times = sorted(entry[0] for entry in sample)
        span = times[-1] - times[0]
        if span <= 0.0:
            return self._width
        width = 3.0 * span / len(times)
        return max(width, self.MIN_WIDTH)

    # -- now-lane internals ----------------------------------------------
    def _now_head_entry(self) -> Optional[tuple]:
        now = self._now
        head = self._now_head
        if head >= len(now):
            if now:
                now.clear()
                self._now_head = 0
            return None
        return now[head]

    # -- pops --------------------------------------------------------------
    def _min_entry_source(self):
        """(key, source) of the earliest live entry; drops tombstones.

        source is 'n' (now lane), 'u' (urgent heap) or 'w' (wheel).
        """
        while True:
            best_key = None
            source = ""
            entry = self._now_head_entry()
            if entry is not None:
                best_key = (entry[0], 1, entry[2])
                source = "n"
            if self._urgent:
                top = self._urgent[0]
                key = top[:3]
                if best_key is None or key < best_key:
                    best_key = key
                    source = "u"
            if self._wheel_total:
                key = self._wheel_min()
                if best_key is None or key < best_key:
                    best_key = key
                    source = "w"
            if best_key is None:
                return None, ""
            event = self._take_source_head(source, peek=True)
            if event._cancelled:
                self._take_source_head(source, peek=False)
                self.tombstones -= 1
                continue
            return best_key, source

    def _take_source_head(self, source: str, peek: bool):
        """Head entry (peek) or popped entry's event drop (consume)."""
        if source == "n":
            if peek:
                return self._now[self._now_head][3]
            self._now_head += 1
            return None
        if source == "u":
            if peek:
                return self._urgent[0][3]
            heapq.heappop(self._urgent)
            return None
        if peek:
            entry = self._min_entry
            if entry is None:
                entry = self._wheel_min()
            return entry[3]
        self._wheel_pop_min(advance=False)
        return None

    def _pop_source(self, source: str) -> tuple:
        if source == "n":
            entry = self._now[self._now_head]
            self._now_head += 1
            if self._now_head >= len(self._now):
                self._now.clear()
                self._now_head = 0
            return entry
        if source == "u":
            return heapq.heappop(self._urgent)
        return self._wheel_pop_min(advance=True)

    def pop_batch(self, until: Optional[float]) -> list:
        # Nothing is pushed while this method runs (no callbacks fire
        # here), so the lanes are static apart from our own pops.  Two
        # fast paths cover the overwhelming majority of batches — a
        # now-lane run strictly earlier than the wheel, and a wheel pop
        # with the now lane empty — before the generic merge loop.
        self.urgent_pending = False
        now = self._now
        urgent = self._urgent
        head = self._now_head
        n_len = len(now)
        if not urgent:
            if head < n_len:
                entry = now[head]
                mk = self._min_entry
                if (not entry[3]._cancelled
                        and (not self._wheel_total
                             or (mk is not None and entry[0] < mk[0]))):
                    time = entry[0]
                    if until is not None and time > until:
                        return []
                    batch = [entry]
                    append = batch.append
                    head += 1
                    while head < n_len:
                        entry = now[head]
                        if entry[0] != time:
                            break
                        head += 1
                        if entry[3]._cancelled:
                            self.tombstones -= 1
                        else:
                            append(entry)
                    if head >= n_len:
                        now.clear()
                        head = 0
                    self._now_head = head
                    return batch
            elif self._wheel_total:
                mk = self._min_entry
                if mk is not None and not mk[3]._cancelled:
                    time = mk[0]
                    if until is not None and time > until:
                        return []
                    batch = [self._wheel_pop_min(advance=True)]
                    while self._wheel_total:
                        key = self._min_entry
                        if key is None:
                            key = self._wheel_min()
                        if key[0] != time:
                            break
                        entry = self._wheel_pop_min(advance=True)
                        if entry[3]._cancelled:
                            self.tombstones -= 1
                        else:
                            batch.append(entry)
                    return batch
        while True:
            # Live head of the now lane.
            head = self._now_head
            n_len = len(now)
            while head < n_len and now[head][3]._cancelled:
                head += 1
                self.tombstones -= 1
            if head >= n_len:
                if n_len:
                    now.clear()
                head = 0
                n_len = 0
            self._now_head = head
            n_time = now[head][0] if n_len else None

            # Live head of the urgent heap.
            while urgent and urgent[0][3]._cancelled:
                heapq.heappop(urgent)
                self.tombstones -= 1
            u_time = urgent[0][0] if urgent else None

            # Live minimum of the wheel.
            w_time = None
            while self._wheel_total:
                entry = self._min_entry
                if entry is None:
                    entry = self._wheel_min()
                if entry[3]._cancelled:
                    self._wheel_pop_min(advance=False)
                    self.tombstones -= 1
                    continue
                w_time = entry[0]
                break

            time = n_time
            if u_time is not None and (time is None or u_time < time):
                time = u_time
            if w_time is not None and (time is None or w_time < time):
                time = w_time
            if time is None:
                return []
            if until is not None and time > until:
                return []

            if u_time != time and w_time != time:
                # Now-lane only: drain the contiguous same-time run.
                batch = []
                append = batch.append
                while head < n_len:
                    entry = now[head]
                    if entry[0] != time:
                        break
                    head += 1
                    if entry[3]._cancelled:
                        self.tombstones -= 1
                    else:
                        append(entry)
                if head >= n_len:
                    now.clear()
                    head = 0
                self._now_head = head
                if batch:
                    return batch
                continue  # the whole run was tombstones

            if n_time != time and u_time != time:
                # Wheel only: pop minima while they share the time.
                batch = []
                while True:
                    entry = self._wheel_pop_min(advance=True)
                    if entry[3]._cancelled:
                        self.tombstones -= 1
                    else:
                        batch.append(entry)
                    if not self._wheel_total:
                        break
                    key = self._min_entry
                    if key is None:
                        key = self._wheel_min()
                    if key[0] != time:
                        break
                if batch:
                    return batch
                continue

            # Cross-lane tie or urgent involvement: generic merge.
            batch = []
            while True:
                key, source = self._min_entry_source()
                if key is None or key[0] != time:
                    return batch
                batch.append(self._pop_source(source))

    def pop_one(self) -> Optional[tuple]:
        self.urgent_pending = False
        key, source = self._min_entry_source()
        if key is None:
            return None
        return self._pop_source(source)

    def requeue(self, entries: list) -> None:
        """Unconsumed batch tail back in front of everything later.

        Priority-1 entries re-enter the now lane *before* its current
        contents (their sequence numbers predate anything pushed since
        the batch was extracted); urgent entries rejoin their heap.
        """
        front = [entry for entry in entries if entry[1] == 1]
        if front:
            head = self._now_head
            if head:
                del self._now[:head]
                self._now_head = 0
            self._now[:0] = front
        for entry in entries:
            if entry[1] != 1:
                heapq.heappush(self._urgent, entry)

    def peek_time(self) -> float:
        key, _ = self._min_entry_source()
        return key[0] if key is not None else _INF

    def __len__(self) -> int:
        return (len(self._now) - self._now_head) + len(self._urgent) \
            + self._wheel_total


#: Registry of selectable schedulers.
SCHEDULERS = {
    HeapScheduler.name: HeapScheduler,
    CalendarScheduler.name: CalendarScheduler,
}

#: The scheduler a bare ``Simulator()`` gets.
DEFAULT_SCHEDULER = CalendarScheduler.name

_default = [DEFAULT_SCHEDULER]  # repro: noqa[fork-unsafe-global] — process-wide CLI default; shard workers receive the scheduler name explicitly in shard params


def default_scheduler() -> str:
    """Name of the scheduler new simulators use by default."""
    return _default[0]


def set_default_scheduler(name: str) -> None:
    """Set the process-wide default scheduler (CLI entry points)."""
    if name not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {name!r} "
                         f"(known: {', '.join(sorted(SCHEDULERS))})")
    _default[0] = name


@contextmanager
def scheduler_override(name: str):
    """Scoped default-scheduler swap (the A/B guard's tool)."""
    if name not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {name!r} "
                         f"(known: {', '.join(sorted(SCHEDULERS))})")
    saved = _default[0]
    _default[0] = name
    try:
        yield
    finally:
        _default[0] = saved


def make_scheduler(name: Optional[str] = None) -> Scheduler:
    """Instantiate a scheduler by name (None = the current default)."""
    chosen = name if name is not None else _default[0]
    try:
        factory = SCHEDULERS[chosen]
    except KeyError:
        raise ValueError(f"unknown scheduler {chosen!r} "
                         f"(known: {', '.join(sorted(SCHEDULERS))})")
    return factory()
