"""repro: a full reproduction of "A System Model for Mobile Commerce"
(Lee, Hu, Yeh — ICDCSW'03) as a working, simulated software stack.

Subpackages map to the paper's six components:

* :mod:`repro.apps` — (i) mobile commerce applications (Table 1)
* :mod:`repro.devices` — (ii) mobile stations (Table 2)
* :mod:`repro.middleware` — (iii) mobile middleware: WAP & i-mode (Table 3)
* :mod:`repro.wireless` — (iv) wireless networks: WLAN & cellular (Tables 4, 5)
* :mod:`repro.net` — (v) wired networks (+ Mobile IP and mobile TCP, §5.2)
* :mod:`repro.web` / :mod:`repro.db` — (vi) host computers (§7)

plus :mod:`repro.core` (the six-component system model itself — Figures
1 and 2, builders, transaction engine, §1.1 requirements checker),
:mod:`repro.security` (§8 security & payment) and :mod:`repro.sim` (the
discrete-event substrate everything runs on).
"""

__version__ = "1.0.0"
