"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``quickstart`` — build Figure 2's MC system and run one purchase;
* ``trace`` — run one application scenario with the span tracer
  installed and print the per-layer latency breakdown (optionally
  exporting the full trace as JSON);
* ``validate`` — build both figures' systems and print their
  validation reports and structure diagrams;
* ``lint`` — run the sim-safety linter over the given paths (defaults
  to the repo's own sources) and exit nonzero on findings;
* ``check`` — statically model-check the Figure 1/2 reference builds,
  printing a PASS/FAIL/INCONCLUSIVE verdict per structural claim;
* ``chaos`` — run a named fault-injection scenario against the full
  MC system (policies on or off) and print the deterministic report;
* ``races`` — whole-program static shared-state analysis: call graph
  over every process function, cross-process access matrix (exported
  as a JSON artifact), findings for unordered shared mutable state;
* ``sanitize`` — run a scenario with the same-timestamp commutativity
  sanitizer installed; hazards are confirmed by deterministic flipped
  replay and any confirmed race fails the command;
* ``bench`` — drive N concurrent users through the full transaction
  path with the hot-path caches on and off and the kernel scheduler
  A/B'd heap-vs-calendar, verify byte-identical outputs, optionally
  sweep a goodput-vs-offered-load curve, and write ``BENCH_PERF.json``;
* ``tables`` — print the paper's five tables as reproduced from the
  model registries (specs only — run ``pytest benchmarks/`` for the
  measured versions);
* ``info`` — version and component inventory.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_quickstart(args) -> int:
    from repro.apps import CommerceApp
    from repro.core import MCSystemBuilder, TransactionEngine

    system = MCSystemBuilder(
        middleware=args.middleware,
        bearer=(args.bearer_kind, args.bearer),
    ).build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 100_000)
    handle = system.add_station(args.device)
    engine = TransactionEngine(system)
    done = engine.run_flow(
        handle, shop.browse_and_buy(account="ann", user="ann"))
    system.run(until=600)
    record = done.value
    print(f"{args.device} over {args.middleware}/{args.bearer}:")
    for step in record.steps:
        print(f"  - {step}")
    print(f"  {'OK' if record.ok else record.error} "
          f"in {record.latency:.3f}s "
          f"({record.bytes_received} bytes)")
    return 0 if record.ok else 1


def _flow_for(app, category: str):
    """The representative end-to-end flow for an application category."""
    return {
        "commerce": lambda: app.browse_and_buy(account="ann", user="ann"),
        "education": lambda: app.attend_class(),
        "erp": lambda: app.manage_resources(),
        "entertainment": lambda: app.buy_and_download(account="ann"),
        "healthcare": lambda: app.rounds(),
        "inventory": lambda: app.driver_rounds(),
        "traffic": lambda: app.navigate(),
        "travel": lambda: app.book_trip(),
    }[category]()


def _cmd_trace(args) -> int:
    import json
    import os

    from repro.apps import ALL_CATEGORIES
    from repro.core import MCSystemBuilder, TransactionEngine
    from repro.obs import (
        install_profiler,
        install_tracer,
        layer_breakdown,
        render_breakdown_table,
        trace_to_dict,
    )

    # Accept both a bare category name and an examples/<name> spelling.
    category = os.path.basename(args.scenario).replace(".py", "")
    if category not in ALL_CATEGORIES:
        print(f"unknown scenario {args.scenario!r}; pick one of: "
              f"{', '.join(sorted(ALL_CATEGORIES))}", file=sys.stderr)
        return 2
    system = MCSystemBuilder(
        middleware=args.middleware,
        bearer=(args.bearer_kind, args.bearer),
    ).build()
    app = ALL_CATEGORIES[category]()
    system.mount_application(app)
    system.host.payment.open_account("ann", 1_000_000)
    handle = system.add_station(args.device)
    tracer = install_tracer(system.sim)
    profiler = install_profiler(system.sim) if args.profile else None
    engine = TransactionEngine(system)
    done = engine.run_flow(handle, _flow_for(app, category))
    system.run(until=600)
    record = done.value

    print(f"{category}: {record.flow_name} on {args.device} over "
          f"{args.middleware}/{args.bearer}")
    breakdown = layer_breakdown(tracer, trace_id=record.trace_id)
    print(render_breakdown_table(breakdown))
    span_sum = sum(breakdown.values())
    print(f"span-sum {span_sum:.6f}s vs end-to-end latency "
          f"{record.latency:.6f}s "
          f"({len(tracer.for_trace(record.trace_id))} spans)")
    print(f"outcome: {'OK' if record.ok else record.error}")
    if args.json:
        with open(args.json, "w") as handle_out:
            json.dump(trace_to_dict(tracer, trace_id=record.trace_id),
                      handle_out, indent=2, sort_keys=True)
        print(f"trace written to {args.json}")
    if profiler is not None:
        summary = profiler.summary()
        print(f"\nkernel: {summary['events_processed']} events, "
              f"mean queue depth {summary['mean_queue_depth']:.1f}, "
              f"max {summary['max_queue_depth']:.0f}")
        for name, count in profiler.top_resumed(8):
            print(f"  {count:6d} resumes  {name}")
    return 0 if record.ok else 1


def _cmd_validate(args) -> int:
    from repro.core import ECSystemBuilder, MCSystemBuilder, render_structure

    from repro.apps import CommerceApp

    mc = MCSystemBuilder().build()
    mc.mount_application(CommerceApp())
    mc.add_station("Toshiba E740")
    ec = ECSystemBuilder().build()
    ec.mount_application(CommerceApp())
    ec.add_client()
    failures = 0
    for label, system, report in [
        ("Figure 1 (EC)", ec, ec.model.validate_ec()),
        ("Figure 2 (MC)", mc, mc.model.validate_mc()),
    ]:
        print(render_structure(system.model, title=label))
        verdict = "VALID" if report.valid else f"INVALID: {report.violations}"
        print(f"\n{label}: {verdict}\n")
        failures += 0 if report.valid else 1
    return failures


def _default_lint_paths() -> list[str]:
    """The repo's own lint targets when they exist, else the package."""
    import os

    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    repo_root = os.path.dirname(os.path.dirname(package_dir))
    paths = [package_dir]
    for extra in ("benchmarks", "examples", "tests"):
        candidate = os.path.join(repo_root, extra)
        if os.path.isdir(candidate):
            paths.append(candidate)
    return paths


def _cmd_lint(args) -> int:
    from repro.analysis import lint_paths

    paths = args.paths or _default_lint_paths()
    try:
        report = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"python -m repro lint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_code(strict=args.strict)


def _cmd_check(args) -> int:
    from repro.analysis import Verdict, check_reference_systems

    reports = check_reference_systems(seed=args.seed)
    failures = 0
    if args.format == "json":
        import json

        print(json.dumps({figure: report.to_dict()
                          for figure, report in reports.items()}, indent=2))
        failures = sum(len(r.failures) for r in reports.values())
    else:
        for figure in ("ec", "mc"):
            report = reports[figure]
            print(report.render_text())
            print()
            failures += len(report.failures)
        overall = Verdict.aggregate(r.verdict for r in reports.values())
        print(f"reference builds: {overall.name}")
    return 1 if failures else 0


def _cmd_chaos(args) -> int:
    from repro.faults import FaultPlan, report_json, run_chaos

    plan = None
    if args.plan:
        with open(args.plan) as handle:
            plan = FaultPlan.from_json(handle.read())
    kwargs = dict(
        scenario=args.scenario,
        seed=args.seed,
        intensity=args.intensity,
        policies=(args.policies == "on"),
        stations=args.stations,
        transactions_per_station=args.transactions,
        horizon=args.horizon,
        middleware=args.middleware,
        bearer=(args.bearer_kind, args.bearer),
        plan=plan,
        fleet=args.fleet,
    )
    if args.workers > 0:
        from repro.perf import run_parallel_chaos

        report = run_parallel_chaos(workers=args.workers, **kwargs)
        if "parallel_fallback" in report:
            note = report["parallel_fallback"]
            print(f"parallel: no legal cut ({note['reason']}); "
                  f"ran sequentially", file=sys.stderr)
    else:
        report = run_chaos(**kwargs)
    text = report_json(report)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(text)
        print(f"report written to {args.json}")
    else:
        print(text)
    print(f"\n{args.scenario} seed={args.seed} policies={args.policies}: "
          f"{report['successful']}/{report['offered']} ok "
          f"(vs offered {report['success_vs_offered']:.3f}), "
          f"p50 {report['latency']['p50']:.3f}s "
          f"p95 {report['latency']['p95']:.3f}s, "
          f"{report['faults'].get('injected', 0)} faults injected",
          file=sys.stderr)
    fleet = report.get("fleet")
    if fleet is not None:
        line = (f"fleet: {fleet['serving']} serving member(s), "
                f"{fleet['stranded_sessions']} stranded session(s)")
        canary = fleet.get("canary")
        if canary is not None:
            line += f"; canary {canary['state']}"
        print(line, file=sys.stderr)
    return 0 if report["success_rate"] > 0 else 1


def _cmd_races(args) -> int:
    from repro.analysis.races import analyze_paths

    paths = args.paths or _default_lint_paths()[:1]
    try:
        analysis = analyze_paths(paths)
    except FileNotFoundError as exc:
        print(f"python -m repro races: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(analysis.render_json() + "\n")
        print(f"access matrix written to {args.json}", file=sys.stderr)
    if args.suggest_cut is not None:
        from repro.sim.parallel import suggest_cut
        from repro.sim.parallel.partition import plan_json

        plan = suggest_cut(users=args.cut_users, workers=args.cut_workers,
                           fleet=args.cut_fleet,
                           matrix=analysis.to_dict()["matrix"])
        text = plan_json(plan)
        if args.suggest_cut == "-":
            print(text)
        else:
            with open(args.suggest_cut, "w") as handle:
                handle.write(text + "\n")
            print(f"shard-cut plan written to {args.suggest_cut}",
                  file=sys.stderr)
        if plan["legal"]:
            print(f"cut: {len(plan['shards'])} shard(s), lookahead "
                  f"{plan['lookahead']}s, {plan['windows']} window(s)",
                  file=sys.stderr)
        else:
            print(f"cut: ILLEGAL — {plan['reason']}", file=sys.stderr)
        return 0
    if args.format == "json":
        print(analysis.render_json())
    else:
        print(analysis.render_text())
    if args.strict_on:
        strict = analysis.findings_in(args.strict_on)
        if strict:
            print(f"\n{len(strict)} unsuppressed finding(s) in strict "
                  f"paths ({', '.join(args.strict_on)})", file=sys.stderr)
            return 1
        print(f"strict paths clean ({', '.join(args.strict_on)})",
              file=sys.stderr)
        return 0
    return 1 if (args.strict and analysis.findings) else 0


def _cmd_sanitize(args) -> int:
    from repro.analysis.races.runner import (
        render_json,
        render_text,
        run_sanitize,
    )

    try:
        report = run_sanitize(
            args.scenario, seed=args.seed, users=args.users,
            stations=args.stations, transactions=args.transactions,
            horizon=args.horizon, intensity=args.intensity,
            max_replays=args.max_replays, flip_mode=args.flip)
    except ValueError as exc:
        print(f"python -m repro sanitize: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(render_json(report) + "\n")
        print(f"report written to {args.json}", file=sys.stderr)
    print(render_text(report))
    return 1 if report["confirmed_races"] else 0


def _cmd_bench(args) -> int:
    import os

    from repro.perf import full_bench, report_to_json

    if args.sanitize:
        # --sanitize switches bench into race-sanitizer mode: same
        # scenario, instrumented shared state, flip-replay confirmation
        # of any same-timestamp hazards, race report instead of the
        # perf report.
        from repro.analysis.races.runner import render_text, run_sanitize

        report = run_sanitize(
            "bench", seed=args.seed, users=args.users,
            transactions=args.transactions, horizon=args.horizon)
        print(render_text(report))
        return 1 if report["confirmed_races"] else 0

    sweep = None
    if args.sweep:
        try:
            sweep = [int(part) for part in args.sweep.split(",") if part]
        except ValueError:
            print(f"--sweep expects comma-separated user counts, "
                  f"got {args.sweep!r}", file=sys.stderr)
            return 2
    report = full_bench(users=args.users, seed=args.seed,
                        transactions_per_user=args.transactions,
                        horizon=args.horizon,
                        scheduler=args.scheduler,
                        sweep=sweep,
                        fleet=args.fleet,
                        workers=args.workers)
    text = report_to_json(report)
    out_dir = os.path.dirname(os.path.abspath(args.out))
    os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as handle:
        handle.write(text + "\n")
    if args.json:
        print(text)
    det = report["determinism"]
    sched = report["scheduler_determinism"]
    fleet_det = report["fleet_determinism"]
    opt = report["optimized"]
    summary = (
        f"bench users={args.users} seed={args.seed} "
        + (f"fleet={args.fleet} " if args.fleet else "")
        + f"scheduler={opt['scheduler']}: "
        f"{opt['measured']['wall_seconds']:.2f}s wall, "
        f"{opt['measured']['events_per_sec']} events/s, "
        f"{opt['measured']['transactions_per_sec']} txn/s; "
        f"caches on/off speedup {report['speedup_caches_on_vs_off']}"
    )
    if "speedup_vs_pre_optimization" in report:
        summary += (f"; vs pre-optimization baseline "
                    f"{report['speedup_vs_pre_optimization']}x")
    if "speedup_vs_pre_calendar" in report:
        summary += (f"; vs pre-calendar baseline "
                    f"{report['speedup_vs_pre_calendar']}x")
    print(summary, file=sys.stderr)
    parallel = report.get("parallel")
    if parallel is not None:
        if "fallback" in parallel:
            print(f"parallel: no legal cut "
                  f"({parallel['fallback']['reason']}); ran sequentially",
                  file=sys.stderr)
        else:
            measured = parallel["report"]["measured"]
            print(f"parallel: {parallel['workers']} worker(s) on "
                  f"{measured['host_cpus']} cpu(s), "
                  f"{parallel['wall_seconds']:.2f}s wall, "
                  f"{parallel['aggregate_events_per_sec']} events/s "
                  f"aggregate; vs sequential "
                  f"{report.get('speedup_parallel_vs_sequential')}x, "
                  f"vs lockstep {parallel['speedup_vs_lockstep']}x",
                  file=sys.stderr)
    if sweep is not None:
        for point in report["sweep"]["deterministic"]["points"]:
            print(f"  sweep users={point['users']:4d}: "
                  f"offered {point['offered']:5d} "
                  f"admitted {point['admitted']:5d} "
                  f"completed {point['completed']:5d} "
                  f"succeeded {point['succeeded']:5d}; "
                  f"goodput {point['goodput_tps']:.3f} tx/s, "
                  f"p95 {point['latency_p95']:.3f}s", file=sys.stderr)
    print(f"report written to {args.out}", file=sys.stderr)
    failures = []
    if sweep is not None:
        curve = report["sweep"]["deterministic"]["curve"]
        if not curve["monotone"]:
            failures.append(
                "capacity curve has a cliff: goodput regressed at "
                + ", ".join(f"users={r['users']}"
                            for r in curve["regressions"]))
        events_check = report["sweep"]["measured"]["events_check"]
        if events_check["checked"] and not events_check["ok"]:
            failures.append(
                f"kernel efficiency regressed across the sweep: "
                f"{events_check['largest']['events_per_sec']} events/s at "
                f"users={events_check['largest']['users']} is below "
                f"{1.0 - events_check['tolerance']:.0%} of "
                f"{events_check['smallest']['events_per_sec']} events/s at "
                f"users={events_check['smallest']['users']}")
    if not det["identical"] or \
            not report["identical_results_caches_on_vs_off"]:
        failed = [name for name, ok in det["checks"].items() if not ok]
        failures.append(f"caches changed the results "
                        f"({', '.join(failed) or 'bench A/B'})")
    if not sched["identical"]:
        failed = [name for name, ok in sched["checks"].items() if not ok]
        failures.append(f"schedulers diverged ({', '.join(failed)})")
    if not fleet_det["identical"]:
        failed = [name for name, ok in fleet_det["checks"].items()
                  if not ok]
        failures.append(
            f"fleet wiring changed the results ({', '.join(failed)})")
    if parallel is not None and "fallback" not in parallel:
        if not parallel["identical_parallel_vs_lockstep"]:
            failures.append(
                f"parallel run diverged from the sequential decomposition "
                f"at {args.users} users / {args.workers} workers")
        guard = parallel["guard"]
        if not guard["identical"]:
            failed = [name for name, ok in guard["checks"].items()
                      if not ok]
            failures.append(
                f"parallel_check failed ({', '.join(failed)})")
    if failures:
        for failure in failures:
            print(f"BENCH FAILURE: {failure}", file=sys.stderr)
        return 1
    print("determinism: caches on/off byte-identical "
          f"({', '.join(det['checks'])})", file=sys.stderr)
    print("determinism: schedulers "
          f"{'/'.join(sched['schedulers'])} byte-identical "
          f"({', '.join(sched['checks'])})", file=sys.stderr)
    print("determinism: fleet wiring transparent "
          f"({', '.join(fleet_det['checks'])})", file=sys.stderr)
    if parallel is not None and "fallback" not in parallel:
        print("determinism: parallel workers byte-identical "
              f"({', '.join(parallel['guard']['checks'])})",
              file=sys.stderr)
    return 0


def _cmd_tables(args) -> int:
    from repro.apps import ALL_CATEGORIES
    from repro.devices import TABLE2_DEVICES
    from repro.wireless import CELLULAR_STANDARDS, WLAN_STANDARDS

    print("Table 1 - application categories:")
    for name, cls in ALL_CATEGORIES.items():
        print(f"  {name:14s} clients: {cls.clients}")
    print("\nTable 2 - mobile stations:")
    for spec in TABLE2_DEVICES.values():
        print(f"  {spec.full_name:26s} {spec.os_name} {spec.os_version:6s} "
              f"{spec.cpu_mhz:5.0f} MHz  {spec.ram_mb}/{spec.rom_mb} MB")
    print("\nTable 3 - middleware: WAP (gateway, WML/WMLC), "
          "i-mode (always-on, cHTML), Palm Web Clipping (extension)")
    print("\nTable 4 - WLAN standards:")
    for std in WLAN_STANDARDS.values():
        low, high = std.typical_range_m
        print(f"  {std.name:10s} {std.max_rate_bps / 1e6:4.0f} Mbps  "
              f"{low:.0f}-{high:.0f} m  {std.modulation}/{std.band_ghz} GHz")
    print("\nTable 5 - cellular standards:")
    for std in CELLULAR_STANDARDS.values():
        rate = (f"{std.data_rate_bps / 1000:.1f} kbps"
                if std.supports_data else "voice only")
        print(f"  {std.name:9s} {std.generation:4s} "
              f"{std.switching}-switched  {rate}")
    return 0


def _cmd_info(args) -> int:
    import repro

    print(f"repro {repro.__version__} — reproduction of "
          "'A System Model for Mobile Commerce' (ICDCSW'03)")
    print(__doc__.split("Commands:")[0].strip())
    for package in ("sim", "net", "wireless", "devices", "middleware",
                    "web", "db", "security", "core", "apps", "obs",
                    "faults", "resilience", "analysis"):
        print(f"  repro.{package}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="A mobile commerce system model, runnable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quickstart = sub.add_parser("quickstart",
                                help="run one end-to-end purchase")
    quickstart.add_argument("--device", default="Toshiba E740")
    quickstart.add_argument("--middleware", default="WAP",
                            choices=["WAP", "i-mode", "Palm"])
    quickstart.add_argument("--bearer", default="GPRS")
    quickstart.add_argument("--bearer-kind", default=None,
                            choices=["cellular", "wlan"])
    quickstart.set_defaults(func=_cmd_quickstart)

    trace = sub.add_parser(
        "trace", help="run one scenario traced; print layer breakdown")
    trace.add_argument("scenario", nargs="?", default="commerce",
                       help="application category (e.g. commerce, travel)")
    trace.add_argument("--device", default="Toshiba E740")
    trace.add_argument("--middleware", default="WAP",
                       choices=["WAP", "i-mode", "Palm"])
    trace.add_argument("--bearer", default="GPRS")
    trace.add_argument("--bearer-kind", default=None,
                       choices=["cellular", "wlan"])
    trace.add_argument("--json", default=None, metavar="PATH",
                       help="also export the full trace as JSON")
    trace.add_argument("--profile", action="store_true",
                       help="print kernel profiling summary")
    trace.set_defaults(func=_cmd_trace)

    validate = sub.add_parser("validate",
                              help="validate both figures' structures")
    validate.set_defaults(func=_cmd_validate)

    lint = sub.add_parser(
        "lint", help="run the sim-safety linter (nonzero exit on findings)")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint "
                           "(default: the repo's own sources)")
    lint.add_argument("--format", default="text", choices=["text", "json"])
    lint.add_argument("--strict", action="store_true",
                      help="fail on warnings too, not only errors")
    lint.set_defaults(func=_cmd_lint)

    check = sub.add_parser(
        "check", help="static model check of the reference builds")
    check.add_argument("--format", default="text", choices=["text", "json"])
    check.add_argument("--seed", type=int, default=0)
    check.set_defaults(func=_cmd_check)

    chaos = sub.add_parser(
        "chaos", help="run a deterministic fault-injection scenario")
    chaos.add_argument("scenario", nargs="?", default="storm",
                       help="flaky-radio, gateway-outage, brownout, "
                            "dns-blackout, storm, fleet-outage, or "
                            "canary-regression")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--intensity", type=float, default=0.5,
                       help="fault intensity in [0, 1] (default 0.5)")
    chaos.add_argument("--policies", default="on", choices=["on", "off"],
                       help="resilience policies (retry, breaker, "
                            "failover, shedding)")
    chaos.add_argument("--stations", type=int, default=None,
                       help="shopper stations (default: 4, or 12 for "
                            "fleet scenarios)")
    chaos.add_argument("--fleet", type=int, default=0,
                       help="gateway fleet size (0 = scenario default; "
                            "fleet-outage and canary-regression "
                            "default to 4)")
    chaos.add_argument("--transactions", type=int, default=8,
                       help="transactions per station")
    chaos.add_argument("--horizon", type=float, default=240.0,
                       help="sim-seconds to run")
    chaos.add_argument("--middleware", default="WAP",
                       choices=["WAP", "i-mode", "Palm"])
    chaos.add_argument("--bearer", default="GPRS")
    chaos.add_argument("--bearer-kind", default=None,
                       choices=["cellular", "wlan"])
    chaos.add_argument("--plan", default=None, metavar="PATH",
                       help="JSON fault plan overriding the scenario")
    chaos.add_argument("--workers", type=int, default=0,
                       help="run the scenario partitioned across N "
                            "worker processes (0 = sequential; falls "
                            "back to sequential when no legal cut, "
                            "e.g. fleet scenarios)")
    chaos.add_argument("--json", default=None, metavar="PATH",
                       help="write the report JSON here instead of stdout")
    chaos.set_defaults(func=_cmd_chaos)

    races = sub.add_parser(
        "races", help="whole-program shared-state race analysis")
    races.add_argument("paths", nargs="*",
                       help="files/directories to analyze "
                            "(default: the repro package sources)")
    races.add_argument("--format", default="text",
                       choices=["text", "json"])
    races.add_argument("--json", default=None, metavar="PATH",
                       help="write the access-matrix JSON artifact here")
    races.add_argument("--strict", action="store_true",
                       help="exit nonzero on any finding")
    races.add_argument("--strict-on", nargs="*", default=None,
                       metavar="PREFIX",
                       help="exit nonzero only on findings under these "
                            "path prefixes (e.g. src/repro/faults)")
    races.add_argument("--suggest-cut", nargs="?", const="-",
                       default=None, metavar="PATH",
                       help="emit the parallel partitioner's shard-cut "
                            "plan for this matrix (shards, cut links, "
                            "lookahead, blocking keys) as JSON to PATH "
                            "(default: stdout)")
    races.add_argument("--cut-users", type=int, default=500,
                       help="scenario size for --suggest-cut "
                            "(default 500)")
    races.add_argument("--cut-workers", type=int, default=4,
                       help="worker count for --suggest-cut (default 4)")
    races.add_argument("--cut-fleet", type=int, default=0,
                       help="gateway fleet size for --suggest-cut; a "
                            "fleet makes the cut illegal and documents "
                            "the sequential fallback")
    races.set_defaults(func=_cmd_races)

    sanitize = sub.add_parser(
        "sanitize",
        help="run a scenario under the commutativity sanitizer")
    sanitize.add_argument(
        "scenario", nargs="?", default="bench",
        help="bench, flaky-radio, gateway-outage, brownout, "
             "dns-blackout, storm, fleet-outage, canary-regression, "
             "or planted-race")
    sanitize.add_argument("--seed", type=int, default=7)
    sanitize.add_argument("--users", type=int, default=50,
                          help="bench scenario: concurrent users")
    sanitize.add_argument("--stations", type=int, default=4,
                          help="chaos scenarios: stations")
    sanitize.add_argument("--transactions", type=int, default=3,
                          help="transactions per user/station")
    sanitize.add_argument("--horizon", type=float, default=120.0,
                          help="sim-seconds to run (default 120)")
    sanitize.add_argument("--intensity", type=float, default=0.5,
                          help="chaos scenarios: fault intensity")
    sanitize.add_argument("--max-replays", type=int, default=8,
                          help="cap on flip-replay confirmations "
                               "(each re-runs the full scenario)")
    sanitize.add_argument("--flip", default="pair",
                          choices=["pair", "batch"],
                          help="replay flip: transpose the conflicting "
                               "pair (default) or reverse the batch")
    sanitize.add_argument("--json", default=None, metavar="PATH",
                          help="write the sanitize report JSON here")
    sanitize.set_defaults(func=_cmd_sanitize)

    bench = sub.add_parser(
        "bench", help="run the load benchmark and write BENCH_PERF.json")
    bench.add_argument("--users", type=int, default=50,
                       help="concurrent simulated users (default 50)")
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--transactions", type=int, default=4,
                       help="transactions per user (default 4)")
    bench.add_argument("--horizon", type=float, default=240.0,
                       help="sim-seconds to run (default 240)")
    bench.add_argument("--scheduler", default=None,
                       choices=["heap", "calendar"],
                       help="kernel scheduler for the timed runs "
                            "(default: calendar; the A/B guard always "
                            "exercises both)")
    bench.add_argument("--sweep", default=None, metavar="N,N,...",
                       help="also run a goodput-vs-offered-load sweep "
                            "at these user counts (e.g. 50,100,200,500)")
    bench.add_argument("--fleet", type=int, default=0,
                       help="run the middleware tier as an N-member "
                            "gateway fleet behind the consistent-hash "
                            "balancer (default 0 = single gateway)")
    bench.add_argument("--workers", type=int, default=0,
                       help="also run the scenario partitioned across N "
                            "worker processes, byte-compare it against "
                            "the sequential decomposition, and record "
                            "the speedup (default 0 = off)")
    bench.add_argument("--out", default="BENCH_PERF.json", metavar="PATH",
                       help="where to write the report "
                            "(default: ./BENCH_PERF.json)")
    bench.add_argument("--json", action="store_true",
                       help="also print the full report JSON to stdout")
    bench.add_argument("--sanitize", action="store_true",
                       help="run the bench under the commutativity "
                            "sanitizer instead of timing it")
    bench.set_defaults(func=_cmd_bench)

    tables = sub.add_parser("tables", help="print the paper's tables")
    tables.set_defaults(func=_cmd_tables)

    info = sub.add_parser("info", help="version and inventory")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    if getattr(args, "bearer_kind", None) is None and \
            hasattr(args, "bearer"):
        from repro.wireless import WLAN_STANDARDS
        args.bearer_kind = ("wlan" if args.bearer in WLAN_STANDARDS
                            else "cellular")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
