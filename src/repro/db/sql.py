"""SQL subset: tokenizer, recursive-descent parser, AST.

Supported statements (enough for every application program in
:mod:`repro.apps` and the host-computer benchmarks):

* ``CREATE TABLE name (col TYPE [PRIMARY KEY] [NOT NULL], ...)``
* ``CREATE INDEX ON table (column)``
* ``INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')``
* ``SELECT a, b | * FROM t [JOIN u ON t.a = u.b] [WHERE expr]
  [ORDER BY col [ASC|DESC]] [LIMIT n]``
* ``UPDATE t SET a = 1 [WHERE expr]``
* ``DELETE FROM t [WHERE expr]``

Expressions support ``AND``/``OR``/``NOT``, comparisons
(``= != <> < <= > >=``), parentheses, string/number/boolean/NULL
literals, column references (optionally ``table.column``) and ``?``
parameter placeholders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

from ..opt import OPTIMIZATIONS

__all__ = [
    "SQLSyntaxError",
    "parse",
    "clear_parse_cache",
    "CreateTable",
    "CreateIndex",
    "Insert",
    "Select",
    "Update",
    "Delete",
    "ColumnDef",
    "ColumnRef",
    "Literal",
    "Param",
    "Arithmetic",
    "Comparison",
    "Logical",
    "Not",
    "Join",
    "OrderBy",
]


class SQLSyntaxError(Exception):
    """Raised on malformed SQL text."""


# ----------------------------------------------------------------- tokens
_KEYWORDS = {
    "CREATE", "TABLE", "INDEX", "ON", "INSERT", "INTO", "VALUES", "SELECT",
    "FROM", "WHERE", "ORDER", "BY", "ASC", "DESC", "LIMIT", "UPDATE", "SET",
    "DELETE", "AND", "OR", "NOT", "NULL", "TRUE", "FALSE", "PRIMARY", "KEY",
    "JOIN", "INTEGER", "REAL", "TEXT", "BOOLEAN", "IF", "EXISTS",
}

_SYMBOLS = ("<=", ">=", "!=", "<>", "=", "<", ">", "(", ")", ",", ".",
            "*", "?", ";", "+", "-")


@dataclass
class _Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | SYMBOL | EOF
    value: Any
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = i + 1
            chunks = []
            while True:
                if j >= n:
                    raise SQLSyntaxError(f"unterminated string at {i}")
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(text[j])
                j += 1
            tokens.append(_Token("STRING", "".join(chunks), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()
                            and _numeric_context(tokens)):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            raw = text[i:j]
            value = float(raw) if "." in raw else int(raw)
            tokens.append(_Token("NUMBER", value, i))
            i = j
            continue
        matched_symbol = None
        for symbol in _SYMBOLS:
            if text.startswith(symbol, i):
                matched_symbol = symbol
                break
        if matched_symbol:
            tokens.append(_Token("SYMBOL", matched_symbol, i))
            i += len(matched_symbol)
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in _KEYWORDS:
                tokens.append(_Token("KEYWORD", upper, i))
            else:
                tokens.append(_Token("IDENT", word, i))
            i = j
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at {i}")
    tokens.append(_Token("EOF", None, n))
    return tokens


def _numeric_context(tokens: list[_Token]) -> bool:
    """A leading '-' is a sign only after an operator/keyword/'('/','."""
    if not tokens:
        return True
    last = tokens[-1]
    if last.kind in ("NUMBER", "STRING", "IDENT"):
        return False
    if last.kind == "SYMBOL" and last.value == ")":
        return False
    return True


# -------------------------------------------------------------------- AST
@dataclass(frozen=True)
class ColumnRef:
    name: str
    table: Optional[str] = None


@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class Param:
    index: int


@dataclass(frozen=True)
class Arithmetic:
    left: Any
    op: str  # "+" | "-" | "*"
    right: Any


@dataclass(frozen=True)
class Comparison:
    left: Any
    op: str
    right: Any


@dataclass(frozen=True)
class Logical:
    op: str  # "AND" | "OR"
    items: tuple


@dataclass(frozen=True)
class Not:
    item: Any


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type: str
    primary_key: bool = False
    nullable: bool = True


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndex:
    table: str
    column: str


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple
    rows: tuple  # tuple of tuples of expressions


@dataclass(frozen=True)
class Join:
    table: str
    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class OrderBy:
    column: ColumnRef
    descending: bool = False


@dataclass(frozen=True)
class Select:
    table: str
    columns: tuple  # of ColumnRef, or ("*",)
    join: Optional[Join] = None
    where: Any = None
    order_by: Optional[OrderBy] = None
    limit: Optional[int] = None


@dataclass(frozen=True)
class Update:
    table: str
    changes: tuple  # of (column_name, expression)
    where: Any = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Any = None


Statement = Union[CreateTable, CreateIndex, Insert, Select, Update, Delete]


# ----------------------------------------------------------------- parser
class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0
        self.param_count = 0

    # -- token helpers -----------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect_keyword(self, *keywords: str) -> str:
        token = self.advance()
        if token.kind != "KEYWORD" or token.value not in keywords:
            raise SQLSyntaxError(
                f"expected {' or '.join(keywords)} at position {token.pos}, "
                f"got {token.value!r}"
            )
        return token.value

    def accept_keyword(self, *keywords: str) -> Optional[str]:
        token = self.peek()
        if token.kind == "KEYWORD" and token.value in keywords:
            self.pos += 1
            return token.value
        return None

    def expect_symbol(self, symbol: str) -> None:
        token = self.advance()
        if token.kind != "SYMBOL" or token.value != symbol:
            raise SQLSyntaxError(
                f"expected {symbol!r} at position {token.pos}, "
                f"got {token.value!r}"
            )

    def accept_symbol(self, symbol: str) -> bool:
        token = self.peek()
        if token.kind == "SYMBOL" and token.value == symbol:
            self.pos += 1
            return True
        return False

    def expect_ident(self) -> str:
        token = self.advance()
        if token.kind != "IDENT":
            raise SQLSyntaxError(
                f"expected identifier at position {token.pos}, "
                f"got {token.value!r}"
            )
        return token.value

    # -- entry -----------------------------------------------------------
    def parse_statement(self) -> Statement:
        keyword = self.expect_keyword(
            "CREATE", "INSERT", "SELECT", "UPDATE", "DELETE"
        )
        if keyword == "CREATE":
            statement = self._create()
        elif keyword == "INSERT":
            statement = self._insert()
        elif keyword == "SELECT":
            statement = self._select()
        elif keyword == "UPDATE":
            statement = self._update()
        else:
            statement = self._delete()
        self.accept_symbol(";")
        token = self.peek()
        if token.kind != "EOF":
            raise SQLSyntaxError(
                f"trailing input at position {token.pos}: {token.value!r}"
            )
        return statement

    # -- statements ----------------------------------------------------------
    def _create(self) -> Statement:
        what = self.expect_keyword("TABLE", "INDEX")
        if what == "INDEX":
            self.expect_keyword("ON")
            table = self.expect_ident()
            self.expect_symbol("(")
            column = self.expect_ident()
            self.expect_symbol(")")
            return CreateIndex(table=table, column=column)
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        table = self.expect_ident()
        self.expect_symbol("(")
        columns = []
        while True:
            name = self.expect_ident()
            type_name = self.expect_keyword("INTEGER", "REAL", "TEXT",
                                            "BOOLEAN")
            primary_key = False
            nullable = True
            while True:
                if self.accept_keyword("PRIMARY"):
                    self.expect_keyword("KEY")
                    primary_key = True
                elif self.accept_keyword("NOT"):
                    self.expect_keyword("NULL")
                    nullable = False
                else:
                    break
            columns.append(ColumnDef(name, type_name, primary_key, nullable))
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")
        return CreateTable(table=table, columns=tuple(columns),
                           if_not_exists=if_not_exists)

    def _insert(self) -> Insert:
        self.expect_keyword("INTO")
        table = self.expect_ident()
        self.expect_symbol("(")
        columns = [self.expect_ident()]
        while self.accept_symbol(","):
            columns.append(self.expect_ident())
        self.expect_symbol(")")
        self.expect_keyword("VALUES")
        rows = []
        while True:
            self.expect_symbol("(")
            values = [self._expression()]
            while self.accept_symbol(","):
                values.append(self._expression())
            self.expect_symbol(")")
            if len(values) != len(columns):
                raise SQLSyntaxError(
                    f"INSERT row has {len(values)} values for "
                    f"{len(columns)} columns"
                )
            rows.append(tuple(values))
            if not self.accept_symbol(","):
                break
        return Insert(table=table, columns=tuple(columns), rows=tuple(rows))

    def _select(self) -> Select:
        if self.accept_symbol("*"):
            columns: tuple = ("*",)
        else:
            refs = [self._column_ref()]
            while self.accept_symbol(","):
                refs.append(self._column_ref())
            columns = tuple(refs)
        self.expect_keyword("FROM")
        table = self.expect_ident()
        join = None
        if self.accept_keyword("JOIN"):
            join_table = self.expect_ident()
            self.expect_keyword("ON")
            left = self._column_ref()
            self.expect_symbol("=")
            right = self._column_ref()
            join = Join(table=join_table, left=left, right=right)
        where = self._where_clause()
        order_by = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            column = self._column_ref()
            descending = False
            direction = self.accept_keyword("ASC", "DESC")
            if direction == "DESC":
                descending = True
            order_by = OrderBy(column=column, descending=descending)
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.kind != "NUMBER" or not isinstance(token.value, int):
                raise SQLSyntaxError("LIMIT requires an integer")
            limit = token.value
        return Select(table=table, columns=columns, join=join, where=where,
                      order_by=order_by, limit=limit)

    def _update(self) -> Update:
        table = self.expect_ident()
        self.expect_keyword("SET")
        changes = []
        while True:
            column = self.expect_ident()
            self.expect_symbol("=")
            changes.append((column, self._expression()))
            if not self.accept_symbol(","):
                break
        return Update(table=table, changes=tuple(changes),
                      where=self._where_clause())

    def _delete(self) -> Delete:
        self.expect_keyword("FROM")
        table = self.expect_ident()
        return Delete(table=table, where=self._where_clause())

    # -- expressions -----------------------------------------------------------
    def _where_clause(self):
        if self.accept_keyword("WHERE"):
            return self._or_expr()
        return None

    def _or_expr(self):
        items = [self._and_expr()]
        while self.accept_keyword("OR"):
            items.append(self._and_expr())
        if len(items) == 1:
            return items[0]
        return Logical("OR", tuple(items))

    def _and_expr(self):
        items = [self._not_expr()]
        while self.accept_keyword("AND"):
            items.append(self._not_expr())
        if len(items) == 1:
            return items[0]
        return Logical("AND", tuple(items))

    def _not_expr(self):
        if self.accept_keyword("NOT"):
            return Not(self._not_expr())
        return self._comparison()

    def _comparison(self):
        if self.accept_symbol("("):
            inner = self._or_expr()
            self.expect_symbol(")")
            return inner
        left = self._expression()
        token = self.peek()
        if token.kind == "SYMBOL" and token.value in (
                "=", "!=", "<>", "<", "<=", ">", ">="):
            op = self.advance().value
            if op == "<>":
                op = "!="
            right = self._expression()
            return Comparison(left, op, right)
        return left  # bare truthy expression (e.g. boolean column)

    def _expression(self):
        """Additive arithmetic: term (('+'|'-') term)*."""
        left = self._term()
        while True:
            token = self.peek()
            if token.kind == "SYMBOL" and token.value in ("+", "-"):
                op = self.advance().value
                left = Arithmetic(left, op, self._term())
            else:
                return left

    def _term(self):
        """Multiplicative arithmetic: primary ('*' primary)*."""
        left = self._primary()
        while True:
            token = self.peek()
            if token.kind == "SYMBOL" and token.value == "*":
                self.advance()
                left = Arithmetic(left, "*", self._primary())
            else:
                return left

    def _primary(self):
        token = self.peek()
        if token.kind == "NUMBER" or token.kind == "STRING":
            self.advance()
            return Literal(token.value)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE",
                                                       "NULL"):
            self.advance()
            return Literal({"TRUE": True, "FALSE": False,
                            "NULL": None}[token.value])
        if token.kind == "SYMBOL" and token.value == "?":
            self.advance()
            param = Param(self.param_count)
            self.param_count += 1
            return param
        if token.kind == "IDENT":
            return self._column_ref()
        raise SQLSyntaxError(
            f"unexpected token {token.value!r} at position {token.pos}"
        )

    def _column_ref(self) -> ColumnRef:
        first = self.expect_ident()
        if self.accept_symbol("."):
            second = self.expect_ident()
            return ColumnRef(name=second, table=first)
        return ColumnRef(name=first)


# Prepared-statement cache: SQL text -> parsed AST.  Statement nodes
# are frozen dataclasses, so one AST can safely be shared by every
# execution of the same query text (parameters travel separately).
# Bounded: cleared wholesale on overflow rather than tracking LRU order,
# which keeps the hit path to a single dict lookup.
_PARSE_CACHE_LIMIT = 1024
_parse_cache: dict[str, Statement] = {}  # repro: noqa[fork-unsafe-global] — keyed by SQL text; per-process divergence only changes hit rate, never results


def clear_parse_cache() -> None:
    """Drop every cached AST (test hook; also the overflow policy)."""
    _parse_cache.clear()


def parse(text: str) -> Statement:
    """Parse one SQL statement into its AST."""
    if OPTIMIZATIONS.sql_cache:
        cached = _parse_cache.get(text)
        if cached is not None:
            return cached
    if not text or not text.strip():
        raise SQLSyntaxError("empty statement")
    statement = _Parser(text).parse_statement()
    if OPTIMIZATIONS.sql_cache:
        if len(_parse_cache) >= _PARSE_CACHE_LIMIT:
            _parse_cache.clear()
        _parse_cache[text] = statement
    return statement
