"""Host-computer data tier (paper §7): SQL engine, transactions, server."""

from .engine import (
    BOOLEAN,
    Column,
    Database,
    INTEGER,
    IntegrityError,
    REAL,
    SchemaError,
    TEXT,
    Table,
)
from .query import Executor, QueryError, QueryResult, execute
from .server import (
    DatabaseClient,
    DatabaseServer,
    DEFAULT_DB_PORT,
    MessageReader,
    encode_message,
)
from .sql import SQLSyntaxError, parse
from .sync import DEFAULT_SYNC_PORT, SyncClient, SyncService
from .transactions import (
    DeadlockError,
    Transaction,
    TransactionError,
    TransactionManager,
)

__all__ = [
    "BOOLEAN",
    "Column",
    "Database",
    "INTEGER",
    "IntegrityError",
    "REAL",
    "SchemaError",
    "TEXT",
    "Table",
    "Executor",
    "QueryError",
    "QueryResult",
    "execute",
    "DatabaseClient",
    "DatabaseServer",
    "DEFAULT_DB_PORT",
    "MessageReader",
    "encode_message",
    "SQLSyntaxError",
    "parse",
    "DEFAULT_SYNC_PORT",
    "SyncClient",
    "SyncService",
    "DeadlockError",
    "Transaction",
    "TransactionError",
    "TransactionManager",
]
