"""Database server: the SQL engine behind a TCP wire protocol.

The host computer's database tier (paper §7).  Clients send
length-prefixed JSON requests ``{"sql": ..., "params": [...]}`` over a
TCP connection and receive ``{"ok": ..., "rows": ...}`` responses.
Each query also burns a service time proportional to the result size,
so database load shows up in end-to-end transaction latency.
"""

from __future__ import annotations

import json
import struct
from collections import deque
from typing import Deque, Optional

from ..net.addressing import IPAddress
from ..net.node import Node
from ..net.tcp import TCPConnection, TCPStack, tcp_stack
from ..obs import end_span, start_span
from ..sim import Counter, Event
from .engine import Database, IntegrityError, SchemaError
from .query import QueryError
from .sql import SQLSyntaxError
from .transactions import DeadlockError, TransactionError, TransactionManager

__all__ = ["DatabaseServer", "DatabaseClient", "TracedDatabaseClient",
           "encode_message", "MessageReader", "DEFAULT_DB_PORT"]

DEFAULT_DB_PORT = 5432
BASE_SERVICE_TIME = 0.000_5
PER_ROW_SERVICE_TIME = 0.000_01


def encode_message(obj: dict) -> bytes:
    """Length-prefixed JSON framing."""
    body = json.dumps(obj, separators=(",", ":")).encode()
    return struct.pack(">I", len(body)) + body


class MessageReader:
    """Incremental decoder for length-prefixed JSON frames."""

    def __init__(self):
        self._buffer = b""

    def feed(self, data: bytes) -> list[dict]:
        """Add bytes; return every complete message now available."""
        self._buffer += data
        messages = []
        while len(self._buffer) >= 4:
            (length,) = struct.unpack(">I", self._buffer[:4])
            if len(self._buffer) < 4 + length:
                break
            body = self._buffer[4: 4 + length]
            self._buffer = self._buffer[4 + length:]
            messages.append(json.loads(body.decode()))
        return messages


class DatabaseServer:
    """Serves a :class:`Database` over TCP with per-connection transactions.

    Protocol verbs:

    * ``{"sql": ..., "params": [...]}`` — autocommit execution;
    * ``{"begin": true}`` / ``{"commit": true}`` / ``{"rollback": true}``
      — explicit transaction control for the connection.
    """

    def __init__(self, node: Node, database: Optional[Database] = None,
                 port: int = DEFAULT_DB_PORT,
                 tcp: Optional[TCPStack] = None):
        self.node = node
        self.sim = node.sim
        self.database = database or Database()
        self.manager = TransactionManager(self.sim, self.database)
        self.port = port
        self.tcp = tcp or tcp_stack(node)
        self.stats = Counter()
        self._listener = self.tcp.listen(port)
        self.sim.spawn(self._accept_loop(), name=f"dbserver@{node.name}")

    def _accept_loop(self):
        while True:
            conn = yield self._listener.accept()
            self.stats.incr("connections")
            self.sim.spawn(self._serve(conn), name="db-session")

    def _serve(self, conn: TCPConnection):
        reader = MessageReader()
        txn = None
        while True:
            chunk = yield conn.recv()
            if chunk == b"":
                if txn is not None:
                    txn.rollback()
                return
            for request in reader.feed(chunk):
                # conn.trace was stamped by TCP from the request's own
                # data segments (packet metadata, zero wire bytes).
                txn, reply = yield from self._handle(request, txn,
                                                     parent=conn.trace)
                conn.send(encode_message(reply))

    def _handle(self, request: dict, txn, parent=None):
        if request.get("begin"):
            if txn is not None:
                txn.rollback()
            txn = self.manager.begin()
            self.stats.incr("begins")
            return txn, {"ok": True}
        if request.get("commit"):
            if txn is not None:
                txn.commit()
                self.stats.incr("commits")
            return None, {"ok": True}
        if request.get("rollback"):
            if txn is not None:
                txn.rollback()
                self.stats.incr("rollbacks")
            return None, {"ok": True}

        sql = request.get("sql", "")
        params = tuple(request.get("params", ()))
        span = None
        if self.sim.tracer is not None and parent is not None:
            span = start_span(self.sim, "db.query", "db", parent=parent,
                              sql=sql.split(None, 1)[0].lower()
                              if sql else "")
        active = txn if txn is not None else self.manager.begin()
        try:
            result = yield active.execute(sql, params)
        except (SQLSyntaxError, QueryError, SchemaError, IntegrityError,
                TransactionError, DeadlockError) as exc:
            # execute() already rolled the transaction back.
            self.stats.incr("errors")
            end_span(self.sim, span, ok=False)
            return None, {"ok": False, "error": str(exc)}
        yield self.sim.timeout(
            BASE_SERVICE_TIME + PER_ROW_SERVICE_TIME * len(result.rows)
        )
        end_span(self.sim, span, ok=True, rows=len(result.rows))
        if txn is None:
            active.commit()
        self.stats.incr("queries")
        return txn, {
            "ok": True,
            "rows": result.rows,
            "rowcount": result.rowcount,
            "access_path": result.access_path,
        }


class DatabaseClient:
    """Client-side helper: one TCP connection, blocking query calls."""

    def __init__(self, node: Node, server_address: IPAddress,
                 port: int = DEFAULT_DB_PORT,
                 tcp: Optional[TCPStack] = None):
        self.node = node
        self.sim = node.sim
        self.server_address = server_address
        self.port = port
        self.tcp = tcp or tcp_stack(node)
        self._conn: Optional[TCPConnection] = None
        self._reader = MessageReader()
        self._pending: Deque[dict] = deque()
        # Serialise concurrent callers so replies match their requests.
        from ..sim import Resource
        self._mutex = Resource(self.sim, capacity=1)

    def connect(self) -> Event:
        """Event firing when the connection is established."""
        self._conn = self.tcp.connect(self.server_address, self.port)
        return self._conn.established_event

    def query(self, sql: str, params: tuple = (), trace=None) -> Event:
        """Event yielding the server's reply dict."""
        return self._roundtrip({"sql": sql, "params": list(params)},
                               trace=trace)

    def begin(self, trace=None) -> Event:
        return self._roundtrip({"begin": True}, trace=trace)

    def commit(self, trace=None) -> Event:
        return self._roundtrip({"commit": True}, trace=trace)

    def rollback(self, trace=None) -> Event:
        return self._roundtrip({"rollback": True}, trace=trace)

    def _roundtrip(self, request: dict, trace=None) -> Event:
        if self._conn is None:
            raise RuntimeError("call connect() first")
        result = self.sim.event()

        def exchange(env):
            grant = self._mutex.request()
            yield grant
            try:
                if trace is not None:
                    # Stamp under the mutex: a concurrent caller must
                    # not relabel segments of an in-flight request.
                    self._conn.trace = trace
                self._conn.send(encode_message(request))
                while not self._pending:
                    chunk = yield self._conn.recv()
                    if chunk == b"":
                        result.succeed(
                            {"ok": False, "error": "connection closed"})
                        return
                    self._pending.extend(self._reader.feed(chunk))
                result.succeed(self._pending.popleft())
            finally:
                self._mutex.release(grant)

        self.sim.spawn(exchange(self.sim), name="db-client")
        return result

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()


class TracedDatabaseClient:
    """Per-request view of a shared :class:`DatabaseClient` that injects
    one TraceContext into every call.

    The underlying client is shared by all concurrent requests, so it
    cannot hold a "current trace" itself; this wrapper binds the trace
    per request instead.  Everything else delegates unchanged.
    """

    def __init__(self, client, trace):
        self._client = client
        self.trace = trace

    def query(self, sql: str, params: tuple = ()) -> Event:
        return self._client.query(sql, params, trace=self.trace)

    def begin(self) -> Event:
        return self._client.begin(trace=self.trace)

    def commit(self) -> Event:
        return self._client.commit(trace=self.trace)

    def rollback(self) -> Event:
        return self._client.rollback(trace=self.trace)

    def __getattr__(self, name):
        return getattr(self._client, name)
