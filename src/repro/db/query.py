"""Query planning and execution over the storage engine.

The planner is small but honest: equality predicates against indexed
columns (primary key or ``CREATE INDEX``-ed) use index lookups, joins
use the index on the inner table when one exists, and everything else
degrades to a scan.  ``EXPLAIN``-style access-path information is
returned alongside results so tests (and the host-computer benchmark)
can verify the index is actually being used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .engine import Column, Database, SchemaError, Table
from .sql import (
    Arithmetic,
    ColumnRef,
    Comparison,
    CreateIndex,
    CreateTable,
    Delete,
    Insert,
    Literal,
    Logical,
    Not,
    Param,
    Select,
    Update,
    parse,
)

__all__ = ["QueryError", "QueryResult", "execute", "Executor"]


class QueryError(Exception):
    """Runtime query failure (unknown column, bad parameter count...)."""


@dataclass
class QueryResult:
    """Rows plus metadata about how the query ran."""

    rows: list[dict] = field(default_factory=list)
    rowcount: int = 0
    access_path: str = "none"

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)


def execute(database: Database, statement_or_sql, params: tuple = ()) \
        -> QueryResult:
    """Parse (if needed) and run one statement against ``database``."""
    return Executor(database).execute(statement_or_sql, params)


class Executor:
    """Stateless statement executor bound to a database."""

    def __init__(self, database: Database):
        self.database = database

    def execute(self, statement_or_sql, params: tuple = ()) -> QueryResult:
        if isinstance(statement_or_sql, str):
            statement = parse(statement_or_sql)
        else:
            statement = statement_or_sql
        handler = {
            CreateTable: self._create_table,
            CreateIndex: self._create_index,
            Insert: self._insert,
            Select: self._select,
            Update: self._update,
            Delete: self._delete,
        }.get(type(statement))
        if handler is None:
            raise QueryError(f"unsupported statement {statement!r}")
        return handler(statement, params)

    # -- DDL --------------------------------------------------------------
    def _create_table(self, stmt: CreateTable, params) -> QueryResult:
        columns = [
            Column(c.name, c.type, nullable=c.nullable,
                   primary_key=c.primary_key)
            for c in stmt.columns
        ]
        self.database.create_table(stmt.table, columns,
                                   if_not_exists=stmt.if_not_exists)
        return QueryResult(access_path="ddl")

    def _create_index(self, stmt: CreateIndex, params) -> QueryResult:
        self.database.table(stmt.table).create_index(stmt.column)
        return QueryResult(access_path="ddl")

    # -- DML --------------------------------------------------------------
    def _insert(self, stmt: Insert, params) -> QueryResult:
        table = self.database.table(stmt.table)
        count = 0
        for row_exprs in stmt.rows:
            values = {
                column: self._value(expr, params, row=None)
                for column, expr in zip(stmt.columns, row_exprs)
            }
            table.insert(values)
            count += 1
        return QueryResult(rowcount=count, access_path="insert")

    def _update(self, stmt: Update, params) -> QueryResult:
        table = self.database.table(stmt.table)
        if any(_references_columns(expr) for _, expr in stmt.changes):
            # SET expressions reading current values: evaluate per row.
            def changes(row, _stmt=stmt, _params=params):
                return {
                    column: self._value(expr, _params, row)
                    for column, expr in _stmt.changes
                }
        else:
            changes = {
                column: self._value(expr, params, row=None)
                for column, expr in stmt.changes
            }
        predicate = self._predicate(stmt.where, params, table)
        count = table.update_rows(predicate, changes)
        return QueryResult(rowcount=count, access_path="update")

    def _delete(self, stmt: Delete, params) -> QueryResult:
        table = self.database.table(stmt.table)
        predicate = self._predicate(stmt.where, params, table)
        count = table.delete_rows(predicate)
        return QueryResult(rowcount=count, access_path="delete")

    # -- SELECT -----------------------------------------------------------
    def _select(self, stmt: Select, params) -> QueryResult:
        table = self.database.table(stmt.table)
        candidates, access_path = self._access_rows(table, stmt.where, params)

        if stmt.join is not None:
            candidates, join_path = self._join(
                stmt, table, candidates, params)
            access_path = f"{access_path}+{join_path}"
            # Re-apply the full WHERE on joined rows (qualified refs now
            # resolvable).
            if stmt.where is not None:
                candidates = [
                    row for row in candidates
                    if self._truthy(stmt.where, params, row)
                ]
        elif stmt.where is not None:
            candidates = [
                row for row in candidates
                if self._truthy(stmt.where, params, row)
            ]

        if stmt.order_by is not None:
            key_name = self._resolve_name(stmt.order_by.column, candidates)
            candidates.sort(
                key=lambda r: (r.get(key_name) is None, r.get(key_name)),
                reverse=stmt.order_by.descending,
            )
        if stmt.limit is not None:
            candidates = candidates[: stmt.limit]

        if stmt.columns == ("*",):
            rows = candidates
        else:
            rows = []
            for row in candidates:
                projected = {}
                for ref in stmt.columns:
                    name = self._resolve_name(ref, candidates)
                    if name not in row:
                        raise QueryError(f"unknown column {ref.name!r}")
                    projected[ref.name] = row[name]
                rows.append(projected)
        return QueryResult(rows=rows, rowcount=len(rows),
                           access_path=access_path)

    def _access_rows(self, table: Table, where, params) \
            -> tuple[list[dict], str]:
        """Pick index lookup vs scan for the driving table."""
        equality = _find_indexable_equality(where, table)
        if equality is not None:
            column_name, expr = equality
            value = self._value(expr, params, row=None)
            return (table.lookup_indexed(column_name, value),
                    f"index({table.name}.{column_name})")
        return list(table.scan()), f"scan({table.name})"

    def _join(self, stmt: Select, outer_table: Table,
              outer_rows: list[dict], params) -> tuple[list[dict], str]:
        join = stmt.join
        inner_table = self.database.table(join.table)
        # Decide which side of the ON clause belongs to the inner table.
        if join.left.table == join.table:
            inner_ref, outer_ref = join.left, join.right
        else:
            inner_ref, outer_ref = join.right, join.left
        use_index = inner_ref.name in inner_table.indexed_columns
        joined: list[dict] = []
        inner_rows = None if use_index else list(inner_table.scan())
        for outer_row in outer_rows:
            outer_value = outer_row.get(outer_ref.name)
            if use_index:
                matches = inner_table.lookup_indexed(
                    inner_ref.name, outer_value)
            else:
                matches = [
                    r for r in inner_rows
                    if r.get(inner_ref.name) == outer_value
                ]
            for inner_row in matches:
                merged = dict(outer_row)
                for key, value in inner_row.items():
                    merged.setdefault(key, value)
                    merged[f"{join.table}.{key}"] = value
                for key, value in outer_row.items():
                    merged[f"{stmt.table}.{key}"] = value
                joined.append(merged)
        path = (f"index-join({join.table}.{inner_ref.name})" if use_index
                else f"nested-loop({join.table})")
        return joined, path

    # -- expression evaluation ---------------------------------------------
    def _predicate(self, where, params, table: Table):
        if where is None:
            return lambda row: True
        return lambda row: self._truthy(where, params, row)

    def _truthy(self, expr, params, row) -> bool:
        value = self._value(expr, params, row)
        return bool(value)

    def _value(self, expr, params, row) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Param):
            if expr.index >= len(params):
                raise QueryError(
                    f"statement wants parameter {expr.index + 1}, "
                    f"got {len(params)}"
                )
            return params[expr.index]
        if isinstance(expr, ColumnRef):
            if row is None:
                raise QueryError(
                    f"column {expr.name!r} referenced outside row context"
                )
            return self._column_value(expr, row)
        if isinstance(expr, Arithmetic):
            left = self._value(expr.left, params, row)
            right = self._value(expr.right, params, row)
            return _arith(left, expr.op, right)
        if isinstance(expr, Comparison):
            left = self._value(expr.left, params, row)
            right = self._value(expr.right, params, row)
            return _compare(left, expr.op, right)
        if isinstance(expr, Logical):
            if expr.op == "AND":
                return all(self._truthy(item, params, row)
                           for item in expr.items)
            return any(self._truthy(item, params, row)
                       for item in expr.items)
        if isinstance(expr, Not):
            return not self._truthy(expr.item, params, row)
        raise QueryError(f"cannot evaluate {expr!r}")

    def _column_value(self, ref: ColumnRef, row: dict) -> Any:
        if ref.table is not None:
            qualified = f"{ref.table}.{ref.name}"
            if qualified in row:
                return row[qualified]
        if ref.name in row:
            return row[ref.name]
        raise QueryError(f"unknown column {ref.name!r} in row")

    def _resolve_name(self, ref: ColumnRef, rows: list[dict]) -> str:
        if ref.table is not None and rows and \
                f"{ref.table}.{ref.name}" in rows[0]:
            return f"{ref.table}.{ref.name}"
        return ref.name


def _arith(left: Any, op: str, right: Any):
    if left is None or right is None:
        return None  # SQL: arithmetic with NULL yields NULL
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
    except TypeError:
        raise QueryError(
            f"cannot apply {op!r} to {type(left).__name__} and "
            f"{type(right).__name__}"
        ) from None
    raise QueryError(f"unknown arithmetic operator {op!r}")


def _compare(left: Any, op: str, right: Any) -> bool:
    if left is None or right is None:
        # SQL three-valued logic, collapsed: NULL comparisons are false
        # except explicit equality with NULL.
        if op == "=":
            return left is None and right is None
        if op == "!=":
            return (left is None) != (right is None)
        return False
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        raise QueryError(
            f"cannot compare {type(left).__name__} with "
            f"{type(right).__name__}"
        ) from None
    raise QueryError(f"unknown operator {op!r}")


def _references_columns(expr) -> bool:
    """Whether an expression tree contains any ColumnRef."""
    if isinstance(expr, ColumnRef):
        return True
    if isinstance(expr, Arithmetic):
        return _references_columns(expr.left) or \
            _references_columns(expr.right)
    if isinstance(expr, Comparison):
        return _references_columns(expr.left) or \
            _references_columns(expr.right)
    if isinstance(expr, Logical):
        return any(_references_columns(item) for item in expr.items)
    if isinstance(expr, Not):
        return _references_columns(expr.item)
    return False


def _find_indexable_equality(where, table: Table):
    """An equality comparison usable as an index probe, if any.

    Only safe at the top level or under AND (under OR the index result
    would be incomplete).
    """
    if where is None:
        return None
    if isinstance(where, Comparison) and where.op == "=":
        left, right = where.left, where.right
        if isinstance(left, ColumnRef) and not isinstance(right, ColumnRef):
            if left.name in table.indexed_columns and \
                    left.table in (None, table.name):
                return left.name, right
        if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
            if right.name in table.indexed_columns and \
                    right.table in (None, table.name):
                return right.name, left
        return None
    if isinstance(where, Logical) and where.op == "AND":
        for item in where.items:
            found = _find_indexable_equality(item, table)
            if found is not None:
                return found
    return None
