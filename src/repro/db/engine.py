"""Storage engine: typed tables, rows, primary keys, secondary indexes.

This is the in-memory heart of the host computer's "database server"
component (paper §7).  It is deliberately dependency-free and
synchronous; query planning lives in :mod:`repro.db.query`, SQL parsing
in :mod:`repro.db.sql`, concurrency in :mod:`repro.db.transactions`,
and the wire protocol in :mod:`repro.db.server`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Column",
    "Table",
    "Database",
    "SchemaError",
    "IntegrityError",
    "INTEGER",
    "REAL",
    "TEXT",
    "BOOLEAN",
]

INTEGER = "INTEGER"
REAL = "REAL"
TEXT = "TEXT"
BOOLEAN = "BOOLEAN"

_CASTS: dict[str, Callable[[Any], Any]] = {
    INTEGER: int,
    REAL: float,
    TEXT: str,
    BOOLEAN: bool,
}


class SchemaError(Exception):
    """Bad DDL: unknown table/column, duplicate definitions, type errors."""


class IntegrityError(Exception):
    """Constraint violation: duplicate primary key, NOT NULL, bad type."""


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    type: str
    nullable: bool = True
    primary_key: bool = False

    def __post_init__(self):
        if self.type not in _CASTS:
            raise SchemaError(f"unknown column type {self.type!r}")

    def coerce(self, value: Any) -> Any:
        """Validate/convert a value for this column."""
        if value is None:
            if not self.nullable and not self.primary_key:
                raise IntegrityError(f"column {self.name} is NOT NULL")
            if self.primary_key:
                raise IntegrityError(f"primary key {self.name} cannot be NULL")
            return None
        expected = _CASTS[self.type]
        if self.type == BOOLEAN and isinstance(value, bool):
            return value
        if self.type == REAL and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            return float(value)
        if self.type == INTEGER and isinstance(value, bool):
            raise IntegrityError(
                f"column {self.name}: boolean is not an INTEGER"
            )
        if isinstance(value, expected):
            return value
        try:
            if self.type == TEXT and not isinstance(value, str):
                raise TypeError
            return expected(value)
        except (TypeError, ValueError):
            raise IntegrityError(
                f"column {self.name}: {value!r} is not {self.type}"
            ) from None


class Table:
    """Rows stored as dicts, with a primary-key map and secondary indexes."""

    def __init__(self, name: str, columns: list[Column]):
        if not columns:
            raise SchemaError(f"table {name} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {name}")
        pks = [c for c in columns if c.primary_key]
        if len(pks) > 1:
            raise SchemaError(f"table {name} has multiple primary keys")
        self.name = name
        self.columns = list(columns)
        self.column_map = {c.name: c for c in columns}
        self.primary_key: Optional[Column] = pks[0] if pks else None
        self.rows: list[dict] = []
        self._pk_index: dict[Any, dict] = {}
        # column name -> value -> list of rows
        self._indexes: dict[str, dict[Any, list[dict]]] = {}

    # -- schema ---------------------------------------------------------
    def column(self, name: str) -> Column:
        try:
            return self.column_map[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r} in table {self.name}"
            ) from None

    def create_index(self, column_name: str) -> None:
        column = self.column(column_name)
        if column_name in self._indexes:
            return
        index: dict[Any, list[dict]] = {}
        for row in self.rows:
            index.setdefault(row[column.name], []).append(row)
        self._indexes[column_name] = index

    @property
    def indexed_columns(self) -> set[str]:
        indexed = set(self._indexes)
        if self.primary_key is not None:
            indexed.add(self.primary_key.name)
        return indexed

    # -- mutation ----------------------------------------------------------
    def insert(self, values: dict) -> dict:
        """Insert one row; returns the stored row."""
        unknown = set(values) - set(self.column_map)
        if unknown:
            raise SchemaError(
                f"unknown column(s) {sorted(unknown)} for table {self.name}"
            )
        row = {}
        for column in self.columns:
            row[column.name] = column.coerce(values.get(column.name))
        if self.primary_key is not None:
            pk = row[self.primary_key.name]
            if pk in self._pk_index:
                raise IntegrityError(
                    f"duplicate primary key {pk!r} in {self.name}"
                )
            self._pk_index[pk] = row
        self.rows.append(row)
        for column_name, index in self._indexes.items():
            index.setdefault(row[column_name], []).append(row)
        return dict(row)

    def delete_rows(self, predicate: Callable[[dict], bool]) -> int:
        """Delete matching rows; returns the count."""
        doomed = [row for row in self.rows if predicate(row)]
        for row in doomed:
            self.rows.remove(row)
            if self.primary_key is not None:
                self._pk_index.pop(row[self.primary_key.name], None)
            for column_name, index in self._indexes.items():
                bucket = index.get(row[column_name])
                if bucket and row in bucket:
                    bucket.remove(row)
        return len(doomed)

    def update_rows(self, predicate: Callable[[dict], bool],
                    changes) -> int:
        """Apply ``changes`` to matching rows; returns the count.

        ``changes`` is either a column->value dict or a callable taking
        the current row and returning such a dict (for SET expressions
        that reference existing column values).
        """
        if not callable(changes):
            unknown = set(changes) - set(self.column_map)
            if unknown:
                raise SchemaError(
                    f"unknown column(s) {sorted(unknown)} for "
                    f"table {self.name}"
                )
        pk_name = self.primary_key.name if self.primary_key else None
        count = 0
        for row in self.rows:
            if not predicate(row):
                continue
            row_changes = changes(row) if callable(changes) else changes
            unknown = set(row_changes) - set(self.column_map)
            if unknown:
                raise SchemaError(
                    f"unknown column(s) {sorted(unknown)} for "
                    f"table {self.name}"
                )
            coerced = {
                name: self.column(name).coerce(value)
                for name, value in row_changes.items()
            }
            if pk_name is not None and pk_name in coerced:
                new_pk = coerced[pk_name]
                if new_pk != row[pk_name] and new_pk in self._pk_index:
                    raise IntegrityError(
                        f"duplicate primary key {new_pk!r} in {self.name}"
                    )
            for column_name, index in self._indexes.items():
                if column_name in coerced:
                    old_bucket = index.get(row[column_name])
                    if old_bucket and row in old_bucket:
                        old_bucket.remove(row)
            if pk_name is not None and pk_name in coerced:
                self._pk_index.pop(row[pk_name], None)
            row.update(coerced)
            if pk_name is not None and pk_name in coerced:
                self._pk_index[row[pk_name]] = row
            for column_name, index in self._indexes.items():
                if column_name in coerced:
                    index.setdefault(row[column_name], []).append(row)
            count += 1
        return count

    # -- lookup -------------------------------------------------------------
    def by_primary_key(self, value: Any) -> Optional[dict]:
        row = self._pk_index.get(value)
        return dict(row) if row is not None else None

    def lookup_indexed(self, column_name: str, value: Any) -> list[dict]:
        """Index-backed equality lookup (falls back to scan if unindexed)."""
        if self.primary_key is not None and \
                column_name == self.primary_key.name:
            row = self._pk_index.get(value)
            return [dict(row)] if row is not None else []
        index = self._indexes.get(column_name)
        if index is not None:
            return [dict(r) for r in index.get(value, [])]
        return [dict(r) for r in self.rows if r.get(column_name) == value]

    def scan(self) -> Iterable[dict]:
        for row in self.rows:
            yield dict(row)

    def __len__(self) -> int:
        return len(self.rows)


class Database:
    """A named collection of tables."""

    def __init__(self, name: str = "main"):
        self.name = name
        self.tables: dict[str, Table] = {}

    def create_table(self, name: str, columns: list[Column],
                     if_not_exists: bool = False) -> Table:
        if name in self.tables:
            if if_not_exists:
                return self.tables[name]
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, columns)
        self.tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise SchemaError(f"no table {name!r}")
        del self.tables[name]

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.tables
