"""Mobile-database synchronisation: device stores vs the host database.

§7: "a growing trend is to provide a mobile database or an embedded
database to a handheld device ... [it] must ... accommodate the
low-bandwidth constraints of a wireless-handheld network."  The
accommodation is *delta sync*: the device ships only records changed
since its last checkpoint and receives only what changed on the host —
implemented here as a :class:`SyncService` (host side, one table per
namespace) and a :class:`SyncClient` (device side, wrapping an
:class:`~repro.devices.embedded_db.EmbeddedDatabase`).

Versioning: the server stamps every record it accepts with its own
monotonic version; devices track a *server anchor* (for pulls) and a
*push anchor* (their local version at the last successful sync).  A
device change against a record the server modified after the device's
anchor is a conflict, resolved server-wins (the server's copy ships
back to the device).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..devices.embedded_db import EmbeddedDatabase, Record, SyncDelta
from ..net.addressing import IPAddress
from ..net.node import Node
from ..net.tcp import TCPConnection, TCPStack, tcp_stack
from ..sim import Counter, Event
from .server import MessageReader, encode_message

__all__ = ["SyncService", "SyncClient", "DEFAULT_SYNC_PORT"]

DEFAULT_SYNC_PORT = 8801


def _record_to_wire(record: Record) -> dict:
    return {"key": record.key, "value": record.value,
            "version": record.version, "deleted": record.deleted}


def _record_from_wire(data: dict) -> Record:
    return Record(key=data["key"], value=dict(data["value"]),
                  version=int(data["version"]),
                  deleted=bool(data["deleted"]))


class _Namespace:
    """One synchronised record set on the host."""

    def __init__(self):
        self.records: dict[str, Record] = {}
        self.version = 0

    def apply(self, records: list[Record], anchor: int) \
            -> tuple[int, list[Record]]:
        """Apply device records; returns (applied, conflicts).

        A record the server changed after the device's ``anchor`` is a
        conflict — the device's edit is discarded and the server copy
        returned so the device converges (server wins).
        """
        applied = 0
        conflicts: list[Record] = []
        for remote in records:
            local = self.records.get(remote.key)
            if local is not None and local.version > anchor:
                conflicts.append(local)
                continue
            self.version += 1
            self.records[remote.key] = Record(
                key=remote.key, value=dict(remote.value),
                version=self.version, deleted=remote.deleted,
            )
            applied += 1
        return applied, conflicts

    def changes_since(self, version: int) -> list[Record]:
        changed = [r for r in self.records.values() if r.version > version]
        changed.sort(key=lambda r: r.version)
        return changed

    def put(self, key: str, value: dict) -> Record:
        """Host-side write (e.g. a back-office update)."""
        self.version += 1
        record = Record(key=key, value=dict(value), version=self.version)
        self.records[key] = record
        return record


class SyncService:
    """Host-side sync endpoint over TCP."""

    def __init__(self, node: Node, port: int = DEFAULT_SYNC_PORT,
                 tcp: Optional[TCPStack] = None):
        self.node = node
        self.sim = node.sim
        self.port = port
        self.tcp = tcp or tcp_stack(node)
        self.namespaces: dict[str, _Namespace] = {}
        self.stats = Counter()
        self._listener = self.tcp.listen(port)
        self.sim.spawn(self._accept_loop(), name=f"sync@{node.name}")

    def namespace(self, name: str) -> _Namespace:
        if name not in self.namespaces:
            self.namespaces[name] = _Namespace()
        return self.namespaces[name]

    def _accept_loop(self):
        while True:
            conn = yield self._listener.accept()
            self.sim.spawn(self._serve(conn), name="sync-session")

    def _serve(self, conn: TCPConnection):
        reader = MessageReader()
        while True:
            chunk = yield conn.recv()
            if chunk == b"":
                return
            for request in reader.feed(chunk):
                reply = self._handle(request)
                conn.send(encode_message(reply))

    def _handle(self, request: dict) -> dict:
        if request.get("op") != "sync":
            return {"ok": False, "error": "unknown op"}
        namespace = self.namespace(request.get("namespace", "default"))
        device_records = [_record_from_wire(r)
                          for r in request.get("records", [])]
        anchor = int(request.get("since", 0))
        applied, conflicts = namespace.apply(device_records, anchor)
        pushed_keys = {r.key for r in device_records}
        # Ship changes the device has not seen — but not echoes of what
        # it just pushed (those now carry fresh server versions).
        outgoing = [r for r in namespace.changes_since(anchor)
                    if r.key not in pushed_keys]
        outgoing.extend(conflicts)
        self.stats.incr("syncs")
        self.stats.incr("applied_from_devices", applied)
        self.stats.incr("conflicts", len(conflicts))
        self.stats.incr("shipped_to_devices", len(outgoing))
        return {
            "ok": True,
            "applied": applied,
            "conflicts": len(conflicts),
            "records": [_record_to_wire(r) for r in outgoing],
            "server_version": namespace.version,
        }


class SyncClient:
    """Device-side sync driver for one embedded database."""

    def __init__(self, database: EmbeddedDatabase,
                 service_address: IPAddress,
                 namespace: str = "default",
                 port: int = DEFAULT_SYNC_PORT,
                 tcp: Optional[TCPStack] = None):
        self.database = database
        self.station = database.station
        self.sim = self.station.sim
        self.service_address = service_address
        self.namespace = namespace
        self.port = port
        self.tcp = tcp or tcp_stack(self.station)
        # Server anchor: highest server version this device has seen.
        self.server_anchor = 0
        # Push anchor: local database version at the last successful sync.
        self.push_anchor = 0
        self.stats = Counter()

    def sync(self, timeout: float = 30.0) -> Event:
        """One sync round; event yields a summary dict or None on timeout."""
        result = self.sim.event()

        def run(env):
            delta = self.database.changes_since(self.push_anchor)
            request = {
                "op": "sync",
                "namespace": self.namespace,
                "since": self.server_anchor,
                "records": [_record_to_wire(r) for r in delta.records],
            }
            conn = self.tcp.connect(self.service_address, self.port)
            expiry = env.timeout(timeout)
            race = yield env.any_of([conn.established_event, expiry])
            if conn.established_event not in race:
                result.succeed(None)
                return
            conn.send(encode_message(request))
            reader = MessageReader()
            deadline = env.timeout(timeout)
            while True:
                chunk_ev = conn.recv()
                got = yield env.any_of([chunk_ev, deadline])
                if chunk_ev not in got or got[chunk_ev] == b"":
                    result.succeed(None)
                    return
                replies = reader.feed(got[chunk_ev])
                if replies:
                    break
            conn.close()
            reply = replies[0]
            if not reply.get("ok"):
                result.succeed(None)
                return
            incoming = SyncDelta(records=[
                _record_from_wire(r) for r in reply.get("records", [])
            ])
            applied_locally = self.database.apply_remote(incoming, force=True)
            self.server_anchor = reply.get("server_version",
                                           self.server_anchor)
            self.push_anchor = self.database.version
            self.stats.incr("rounds")
            summary = {
                "pushed": len(delta.records),
                "pulled": applied_locally,
                "conflicts": reply.get("conflicts", 0),
                "bytes_up": delta.size_bytes(),
                "server_version": reply.get("server_version", 0),
            }
            result.succeed(summary)

        self.sim.spawn(run(self.sim), name="sync-client")
        return result
