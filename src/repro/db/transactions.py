"""Transactions: table-level two-phase locking with undo-based rollback.

Good enough for the host computer's application programs: a
:class:`Transaction` acquires shared/exclusive table locks (strict 2PL
— all locks held to commit/abort), records before-images, and restores
them on rollback.  Deadlocks are broken by wound-wait on lock-request
timeouts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..sim import Event, Simulator
from .engine import Database, IntegrityError, SchemaError, Table
from .query import Executor, QueryError, QueryResult
from .sql import CreateIndex, CreateTable, Delete, Insert, Select, Update, parse

__all__ = ["TransactionError", "DeadlockError", "Transaction",
           "TransactionManager"]

_txn_ids = itertools.count(1)


class TransactionError(Exception):
    """Misuse: operating on a finished transaction, etc."""


class DeadlockError(Exception):
    """Raised when a lock cannot be acquired in time."""


class _TableLock:
    """Shared/exclusive lock with FIFO-ish wakeups."""

    def __init__(self):
        self.shared_by: set[int] = set()
        self.exclusive_by: Optional[int] = None
        self.waiters: list[Event] = []

    def can_share(self, txn_id: int) -> bool:
        return self.exclusive_by is None or self.exclusive_by == txn_id

    def can_exclusive(self, txn_id: int) -> bool:
        others_shared = self.shared_by - {txn_id}
        return (self.exclusive_by in (None, txn_id)) and not others_shared

    def wake_all(self) -> None:
        waiters, self.waiters = self.waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()


@dataclass
class _UndoRecord:
    table: Table
    saved_rows: list[dict]
    saved_pk_index: dict
    saved_indexes: dict


class TransactionManager:
    """Lock table + transaction factory for one database."""

    def __init__(self, sim: Simulator, database: Database,
                 lock_timeout: float = 5.0):
        self.sim = sim
        self.database = database
        self.lock_timeout = lock_timeout
        self._locks: dict[str, _TableLock] = {}
        self.committed = 0
        self.aborted = 0

    def begin(self) -> "Transaction":
        return Transaction(self)

    def _lock_for(self, table_name: str) -> _TableLock:
        if table_name not in self._locks:
            self._locks[table_name] = _TableLock()
        return self._locks[table_name]

    def acquire(self, txn: "Transaction", table_name: str,
                exclusive: bool) -> Event:
        """Event that fires when the lock is granted (or fails: deadlock)."""
        lock = self._lock_for(table_name)
        result = self.sim.event()

        def attempt(env):
            deadline = env.now + self.lock_timeout
            while True:
                ok = (lock.can_exclusive(txn.txn_id) if exclusive
                      else lock.can_share(txn.txn_id))
                if ok:
                    if exclusive:
                        lock.exclusive_by = txn.txn_id
                        lock.shared_by.discard(txn.txn_id)
                    else:
                        lock.shared_by.add(txn.txn_id)
                    txn._held.add(table_name)
                    result.succeed()
                    return
                if env.now >= deadline:
                    result.fail(DeadlockError(
                        f"txn {txn.txn_id} timed out waiting for "
                        f"{'X' if exclusive else 'S'} lock on {table_name}"
                    ))
                    return
                waiter = env.event()
                lock.waiters.append(waiter)
                expiry = env.timeout(max(0.0, deadline - env.now))
                yield env.any_of([waiter, expiry])

        self.sim.spawn(attempt(self.sim), name=f"lock-{table_name}")
        return result

    def release_all(self, txn: "Transaction") -> None:
        for table_name in txn._held:
            lock = self._locks.get(table_name)
            if lock is None:
                continue
            lock.shared_by.discard(txn.txn_id)
            if lock.exclusive_by == txn.txn_id:
                lock.exclusive_by = None
            lock.wake_all()
        txn._held.clear()


class Transaction:
    """One ACID(ish) unit of work.

    Usage inside a process::

        txn = manager.begin()
        result = yield txn.execute("SELECT * FROM items WHERE id = ?", (3,))
        yield txn.execute("UPDATE items SET qty = ? WHERE id = ?", (2, 3))
        txn.commit()
    """

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"

    def __init__(self, manager: TransactionManager):
        self.manager = manager
        self.txn_id = next(_txn_ids)
        self.state = Transaction.ACTIVE
        self._held: set[str] = set()
        self._undo: dict[str, _UndoRecord] = {}
        self._executor = Executor(manager.database)

    # -- statement execution -------------------------------------------------
    def execute(self, statement_or_sql, params: tuple = ()) -> Event:
        """Event yielding a QueryResult (fails on lock timeout)."""
        if self.state != Transaction.ACTIVE:
            raise TransactionError(f"transaction is {self.state}")
        statement = (parse(statement_or_sql)
                     if isinstance(statement_or_sql, str)
                     else statement_or_sql)
        writes = isinstance(statement, (Insert, Update, Delete,
                                        CreateTable, CreateIndex))
        table_name = statement.table
        sim = self.manager.sim
        result = sim.event()

        def run(env):
            try:
                if not isinstance(statement, CreateTable):
                    yield self.manager.acquire(self, table_name,
                                               exclusive=writes)
                if writes and table_name in self.manager.database.tables:
                    self._snapshot(table_name)
                outcome = self._executor.execute(statement, params)
            except (DeadlockError, TransactionError, QueryError,
                    SchemaError, IntegrityError) as exc:
                self.rollback()
                result.fail(exc)
                return
            result.succeed(outcome)

        sim.spawn(run(sim), name=f"txn{self.txn_id}-exec")
        return result

    def _snapshot(self, table_name: str) -> None:
        """Record a before-image of the table, once per transaction."""
        if table_name in self._undo:
            return
        table = self.manager.database.table(table_name)
        self._undo[table_name] = _UndoRecord(
            table=table,
            saved_rows=[dict(row) for row in table.rows],
            saved_pk_index=dict(table._pk_index),
            saved_indexes={
                name: {value: list(bucket) for value, bucket in index.items()}
                for name, index in table._indexes.items()
            },
        )

    # -- outcome ----------------------------------------------------------
    def commit(self) -> None:
        if self.state != Transaction.ACTIVE:
            raise TransactionError(f"transaction is {self.state}")
        self.state = Transaction.COMMITTED
        self._undo.clear()
        self.manager.release_all(self)
        self.manager.committed += 1

    def rollback(self) -> None:
        if self.state != Transaction.ACTIVE:
            return
        self.state = Transaction.ABORTED
        for record in self._undo.values():
            table = record.table
            table.rows = [dict(row) for row in record.saved_rows]
            table._pk_index = {
                row[table.primary_key.name]: row for row in table.rows
            } if table.primary_key else {}
            rebuilt: dict[str, dict] = {}
            for index_name in record.saved_indexes:
                index: dict = {}
                for row in table.rows:
                    index.setdefault(row[index_name], []).append(row)
                rebuilt[index_name] = index
            table._indexes = rebuilt
        self._undo.clear()
        self.manager.release_all(self)
        self.manager.aborted += 1
