"""Microbrowsers: the client side of mobile middleware.

The paper's mobile stations run *microbrowsers* that display WML (WAP)
or cHTML (i-mode) content on tiny screens.  Rendering here is real
work: parsing cost scales with document size and format (binary-encoded
WMLC decks decode cheaper than verbose HTML), layout wraps text to the
device's screen width, and the whole job is charged to the station's
CPU and battery — so the same page takes longer on a Palm i705 than on
a Toshiba E740, which is what the Table 2 benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..obs import end_span, start_span
from ..sim import Event
from .hardware import BatteryDeadError, OutOfMemoryError
from .os import TaskLimitError
from .station import MobileStation

__all__ = ["RenderedPage", "Microbrowser", "UnsupportedContentError",
           "CYCLES_PER_BYTE"]

# Parse+layout cost by content type (CPU cycles per payload byte).
CYCLES_PER_BYTE = {
    "text/vnd.wap.wml": 450.0,          # verbose XML
    "application/vnd.wap.wmlc": 220.0,  # tokenised binary: cheap to decode
    "text/html": 900.0,                 # full HTML: heaviest
    "text/x-chtml": 500.0,              # compact HTML subset
    "text/plain": 120.0,
    # Palm Web Clipping: pre-digested text, cheapest of all to show.
    "text/x-palm-clipping": 100.0,
}

RENDER_MEMORY_FACTOR_KB = 3  # working set: ~3 KB of RAM per KB of markup


class UnsupportedContentError(Exception):
    """Raised for content types the microbrowser cannot display."""


@dataclass
class RenderedPage:
    """The outcome of rendering one document."""

    content_type: str
    lines: list[str]
    render_seconds: float
    truncated: bool
    source_bytes: int

    @property
    def visible_text(self) -> str:
        return "\n".join(self.lines)


class Microbrowser:
    """A content renderer bound to one mobile station."""

    def __init__(self, station: MobileStation,
                 accepted_types: Optional[set[str]] = None):
        self.station = station
        self.accepted_types = accepted_types or set(CYCLES_PER_BYTE)
        self.pages_rendered = 0

    def accepts(self, content_type: str) -> bool:
        return content_type in self.accepted_types

    def render(self, body: bytes, content_type: str, trace=None) -> Event:
        """Render a document; the event yields a :class:`RenderedPage`.

        Raises :class:`UnsupportedContentError` immediately for alien
        content types (a WML-only phone handed raw HTML, for example —
        the problem WAP gateways exist to solve).
        """
        if not self.accepts(content_type) or content_type not in CYCLES_PER_BYTE:
            raise UnsupportedContentError(
                f"{self.station.name} cannot display {content_type!r}"
            )
        station = self.station
        sim = station.sim
        result = sim.event()
        size = len(body)
        cycles = size * CYCLES_PER_BYTE[content_type]
        mem_kb = max(1, size * RENDER_MEMORY_FACTOR_KB // 1024)
        tag = f"render-{self.pages_rendered}"
        station.memory.allocate(tag, mem_kb)
        span = None
        if trace is not None:
            span = start_span(sim, "device.render", "device", parent=trace,
                              content_type=content_type, bytes=size)

        def job(env):
            start = env.now
            try:
                yield station.compute(cycles, task="render")
                lines, truncated = self._layout(body)
                elapsed = env.now - start
                station.screen_on(elapsed)
                self.pages_rendered += 1
                end_span(sim, span, ok=True)
                result.succeed(RenderedPage(
                    content_type=content_type,
                    lines=lines,
                    render_seconds=elapsed,
                    truncated=truncated,
                    source_bytes=size,
                ))
            except (BatteryDeadError, OutOfMemoryError,
                    TaskLimitError) as exc:
                # Device faults (dead battery, task limits) surface to
                # whoever awaits the render, not as a simulator crash.
                end_span(sim, span, ok=False)
                result.fail(exc)
            finally:
                station.memory.free(tag)

        sim.spawn(job(sim), name=f"{station.name}-render")
        return result

    def _layout(self, body: bytes) -> tuple[list[str], bool]:
        """Strip markup and wrap to the device screen."""
        text = _strip_markup(body.decode("utf-8", errors="replace"))
        screen = self.station.spec.screen
        width = screen.chars_per_line
        lines: list[str] = []
        for paragraph in text.split("\n"):
            words = paragraph.split()
            if not words:
                continue
            current = ""
            for word in words:
                if not current:
                    current = word
                elif len(current) + 1 + len(word) <= width:
                    current += " " + word
                else:
                    lines.append(current)
                    current = word
            if current:
                lines.append(current)
        limit = screen.visible_lines * 20  # generous scrollback
        truncated = len(lines) > limit
        return lines[:limit], truncated


def _strip_markup(text: str) -> str:
    """Remove tags, normalise entities and whitespace (crude but fair)."""
    out: list[str] = []
    in_tag = False
    for ch in text:
        if ch == "<":
            in_tag = True
        elif ch == ">":
            in_tag = False
            out.append(" ")
        elif not in_tag:
            out.append(ch)
    plain = "".join(out)
    for entity, char in [("&amp;", "&"), ("&lt;", "<"), ("&gt;", ">"),
                         ("&nbsp;", " "), ("&quot;", '"')]:
        plain = plain.replace(entity, char)
    return plain
