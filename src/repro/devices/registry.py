"""The device catalogue: Table 2 of the paper, as instantiable specs.

Every row of "Table 2. Some major mobile stations" is here with its
published numbers.  The Nokia 9290's clock rate is not in the table
(the paper notes some entries are "classified as confidential"); we
model the 32-bit ARM9 RISC at its well-known 52 MHz and flag that in
the spec's ``note`` field.
"""

from __future__ import annotations

from ..net.addressing import IPAddress
from ..sim import Simulator
from ..wireless.mobility import Position
from .os import OS_PROFILES, OSProfile
from .station import DeviceSpec, MobileStation, Screen

__all__ = ["TABLE2_DEVICES", "device_spec", "build_station"]

TABLE2_DEVICES: dict[str, DeviceSpec] = {
    spec.full_name: spec
    for spec in [
        DeviceSpec(
            vendor="Compaq",
            model="iPAQ H3870",
            os_name="Pocket PC",
            os_version="2002",
            cpu_name="206 MHz Intel StrongARM 32-bit RISC",
            cpu_mhz=206.0,
            ram_mb=64,
            rom_mb=32,
            screen=Screen(width_px=240, height_px=320, color=True),
        ),
        DeviceSpec(
            vendor="Nokia",
            model="9290 Communicator",
            os_name="Symbian OS",
            os_version="6.0",
            cpu_name="32-bit ARM9 RISC",
            cpu_mhz=52.0,
            ram_mb=16,
            rom_mb=8,
            screen=Screen(width_px=640, height_px=200, color=True),
            note="clock rate not published in Table 2 (confidential); "
                 "modelled at the ARM9's shipping 52 MHz",
        ),
        DeviceSpec(
            vendor="Palm",
            model="i705",
            os_name="Palm OS",
            os_version="4.1",
            cpu_name="33 MHz Motorola Dragonball VZ",
            cpu_mhz=33.0,
            ram_mb=8,
            rom_mb=4,
            screen=Screen(width_px=160, height_px=160, color=False),
        ),
        DeviceSpec(
            vendor="SONY",
            model="Clie PEG-NR70V",
            os_name="Palm OS",
            os_version="4.1",
            cpu_name="66 MHz Motorola Dragonball Super VZ",
            cpu_mhz=66.0,
            ram_mb=16,
            rom_mb=8,
            screen=Screen(width_px=320, height_px=480, color=True),
        ),
        DeviceSpec(
            vendor="Toshiba",
            model="E740",
            os_name="Pocket PC",
            os_version="2002",
            cpu_name="400 MHz Intel PXA250",
            cpu_mhz=400.0,
            ram_mb=64,
            rom_mb=32,
            screen=Screen(width_px=240, height_px=320, color=True),
        ),
    ]
}


def device_spec(full_name: str) -> DeviceSpec:
    """Look up a Table 2 device ("Palm i705", "Toshiba E740", ...)."""
    try:
        return TABLE2_DEVICES[full_name]
    except KeyError:
        raise KeyError(
            f"unknown device {full_name!r}; known: {sorted(TABLE2_DEVICES)}"
        ) from None


def build_station(sim: Simulator, full_name: str, address: IPAddress,
                  position: Position = Position(0, 0),
                  name: str | None = None) -> MobileStation:
    """Instantiate a Table 2 device as a ready-to-attach MobileStation."""
    spec = device_spec(full_name)
    profile: OSProfile = OS_PROFILES[spec.os_name]
    return MobileStation(sim, spec, profile, address,
                         position=position, name=name)
