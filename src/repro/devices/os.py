"""Mobile operating systems (paper §4.1): Palm OS, Pocket PC, Symbian OS.

The three OS profiles differ exactly along the axes the paper
discusses:

* **Palm OS** — "plain vanilla design", cooperative single-tasking,
  tiny overhead, battery life "approximately twice that of its rivals";
* **Pocket PC** — "far more computing power than Windows CE" but
  battery-hungry, preemptive multitasking;
* **Symbian OS (EPOC32)** — "a 32-bit open operating system that
  supports preemptive multitasking", balanced overhead.

An :class:`OSProfile` turns those qualitative claims into parameters:
scheduling overhead (multiplies CPU time), max concurrent tasks, and a
battery-efficiency factor.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OSProfile", "PALM_OS", "POCKET_PC", "SYMBIAN_OS", "OS_PROFILES",
           "TaskLimitError", "TaskTable"]


class TaskLimitError(Exception):
    """Raised when a single-tasking OS is asked to multitask."""


@dataclass(frozen=True)
class OSProfile:
    """Behavioural parameters of a mobile OS family."""

    name: str
    version: str
    multitasking: str          # "cooperative" | "preemptive"
    max_tasks: int             # concurrent task ceiling
    cpu_overhead: float        # >= 1.0; multiplies every cycle count
    battery_efficiency: float  # > 1.0 = longer battery life
    footprint_kb: int          # resident RAM the OS itself claims

    def __post_init__(self):
        if self.cpu_overhead < 1.0:
            raise ValueError("cpu_overhead must be >= 1.0")
        if self.max_tasks < 1:
            raise ValueError("max_tasks must be >= 1")


PALM_OS = OSProfile(
    name="Palm OS",
    version="4.1",
    multitasking="cooperative",
    max_tasks=1,
    cpu_overhead=1.05,          # plain vanilla: almost no tax
    battery_efficiency=2.0,     # "approximately twice that of its rivals"
    footprint_kb=512,
)

POCKET_PC = OSProfile(
    name="Pocket PC",
    version="2002",
    multitasking="preemptive",
    max_tasks=32,
    cpu_overhead=1.35,          # battery-hungry, heavier system services
    battery_efficiency=1.0,
    footprint_kb=8192,
)

SYMBIAN_OS = OSProfile(
    name="Symbian OS",
    version="EPOC32 6.x",
    multitasking="preemptive",
    max_tasks=16,
    cpu_overhead=1.20,
    battery_efficiency=1.3,
    footprint_kb=4096,
)

OS_PROFILES = {
    profile.name: profile for profile in (PALM_OS, POCKET_PC, SYMBIAN_OS)
}


class TaskTable:
    """Tracks running tasks against the OS's concurrency ceiling."""

    def __init__(self, profile: OSProfile):
        self.profile = profile
        self.running: list[str] = []

    def start(self, name: str) -> None:
        if len(self.running) >= self.profile.max_tasks:
            raise TaskLimitError(
                f"{self.profile.name} ({self.profile.multitasking}) "
                f"cannot run more than {self.profile.max_tasks} task(s); "
                f"running: {self.running}"
            )
        self.running.append(name)

    def finish(self, name: str) -> None:
        if name in self.running:
            self.running.remove(name)

    def __len__(self) -> int:
        return len(self.running)
