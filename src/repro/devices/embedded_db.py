"""Embedded/mobile databases (paper §7, "Database servers").

"A growing trend is to provide a mobile database or an embedded
database to a handheld device ... Embedded databases have very small
footprints, and must be able to run without the services of a database
administrator and accommodate the low-bandwidth constraints of a
wireless-handheld network."

:class:`EmbeddedDatabase` is that: a dictionary-of-records store whose
footprint is charged against the device's RAM, with dirty-tracking and
a delta :class:`SyncSession` protocol so only changed records cross the
wireless link.  The server side of sync lives in :mod:`repro.db`; this
module only needs a record-store peer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from .hardware import OutOfMemoryError
from .station import MobileStation

__all__ = ["Record", "EmbeddedDatabase", "SyncDelta", "apply_delta"]

RECORD_OVERHEAD_BYTES = 24


@dataclass
class Record:
    """One synchronisable record."""

    key: str
    value: dict
    version: int = 0
    deleted: bool = False

    def size_bytes(self) -> int:
        return RECORD_OVERHEAD_BYTES + len(self.key) + len(json.dumps(self.value))


@dataclass
class SyncDelta:
    """Changes shipped in one sync direction."""

    records: list[Record] = field(default_factory=list)
    since_version: int = 0
    new_version: int = 0

    def size_bytes(self) -> int:
        return 16 + sum(r.size_bytes() for r in self.records)


class EmbeddedDatabase:
    """A small-footprint record store living in device RAM."""

    def __init__(self, station: MobileStation, name: str = "mobiledb",
                 quota_kb: Optional[int] = None):
        self.station = station
        self.name = name
        self.quota_kb = quota_kb
        self._records: dict[str, Record] = {}
        self._version = 0
        self._used_bytes = 0
        self._memory_tag = f"db-{name}"

    # -- CRUD ---------------------------------------------------------------
    def put(self, key: str, value: dict) -> Record:
        """Insert or update; bumps the database version."""
        old = self._records.get(key)
        self._version += 1
        record = Record(key=key, value=dict(value), version=self._version)
        delta_bytes = record.size_bytes() - (old.size_bytes() if old else 0)
        self._charge(delta_bytes)
        self._records[key] = record
        return record

    def get(self, key: str) -> Optional[dict]:
        record = self._records.get(key)
        if record is None or record.deleted:
            return None
        return dict(record.value)

    def delete(self, key: str) -> bool:
        """Tombstone the record (kept for sync); False if absent."""
        record = self._records.get(key)
        if record is None or record.deleted:
            return False
        self._version += 1
        record.deleted = True
        record.version = self._version
        return True

    def keys(self) -> list[str]:
        return sorted(k for k, r in self._records.items() if not r.deleted)

    def __len__(self) -> int:
        return len(self.keys())

    @property
    def version(self) -> int:
        return self._version

    @property
    def footprint_kb(self) -> int:
        return max(1, self._used_bytes // 1024)

    # -- memory accounting ----------------------------------------------------
    def _charge(self, delta_bytes: int) -> None:
        new_used = self._used_bytes + max(delta_bytes, 0)
        if self.quota_kb is not None and new_used // 1024 > self.quota_kb:
            raise OutOfMemoryError(
                f"{self.name}: quota {self.quota_kb} KB exceeded"
            )
        old_kb, new_kb = self.footprint_kb, max(1, new_used // 1024)
        if new_kb > old_kb:
            self.station.memory.allocate(self._memory_tag, new_kb - old_kb)
        self._used_bytes = new_used

    # -- sync -----------------------------------------------------------------
    def changes_since(self, version: int) -> SyncDelta:
        """Records changed after ``version`` (including tombstones)."""
        changed = [r for r in self._records.values() if r.version > version]
        changed.sort(key=lambda r: r.version)
        return SyncDelta(records=[Record(r.key, dict(r.value), r.version,
                                         r.deleted) for r in changed],
                         since_version=version,
                         new_version=self._version)

    def apply_remote(self, delta: SyncDelta, force: bool = False) -> int:
        """Apply server-side changes; last-writer-wins by version.

        ``force=True`` applies regardless of local versions — used by
        the sync client, for which the server is authoritative (its
        version counter lives in a different number space).
        """
        applied = 0
        for remote in delta.records:
            local = self._records.get(remote.key)
            if not force and local is not None and \
                    local.version >= remote.version:
                continue  # our copy is as new or newer
            self._version = max(self._version, remote.version)
            self._charge(remote.size_bytes()
                         - (local.size_bytes() if local else 0))
            self._records[remote.key] = Record(
                remote.key, dict(remote.value), remote.version, remote.deleted
            )
            applied += 1
        return applied


def apply_delta(store: dict[str, Record], delta: SyncDelta) -> int:
    """Server-side helper: merge a device's delta into a plain dict store."""
    applied = 0
    for remote in delta.records:
        local = store.get(remote.key)
        if local is not None and local.version >= remote.version:
            continue
        store[remote.key] = Record(remote.key, dict(remote.value),
                                   remote.version, remote.deleted)
        applied += 1
    return applied
