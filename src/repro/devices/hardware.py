"""Hardware models for mobile stations: CPU, memory, battery.

The paper (§8) characterises mobile stations as "limited by their small
screens, limited memory, limited processing power, and low battery
power".  These models make those limits *bind*: rendering a page takes
CPU cycles (slower on a 33 MHz Dragonball than a 400 MHz PXA250),
memory allocation can fail, and the battery actually drains.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Event, Simulator

__all__ = ["CPU", "Memory", "Battery", "DrainRates", "OutOfMemoryError",
           "BatteryDeadError"]


class OutOfMemoryError(Exception):
    """Raised when an allocation exceeds the device's free RAM."""


class BatteryDeadError(Exception):
    """Raised when an operation is attempted on a drained battery."""


class CPU:
    """A single-core CPU clocked at ``mhz``; work is counted in cycles."""

    def __init__(self, sim: Simulator, mhz: float, overhead_factor: float = 1.0):
        if mhz <= 0:
            raise ValueError(f"CPU clock must be positive: {mhz}")
        if overhead_factor < 1.0:
            raise ValueError("overhead factor cannot be below 1.0")
        self.sim = sim
        self.mhz = mhz
        self.overhead_factor = overhead_factor
        self.busy_seconds = 0.0

    def seconds_for(self, cycles: float) -> float:
        """Wall-clock (virtual) time to execute ``cycles``."""
        if cycles < 0:
            raise ValueError(f"negative cycle count: {cycles}")
        return cycles * self.overhead_factor / (self.mhz * 1e6)

    def execute(self, cycles: float) -> Event:
        """Timeout event covering the execution of ``cycles``."""
        duration = self.seconds_for(cycles)
        self.busy_seconds += duration
        return self.sim.timeout(duration)


class Memory:
    """RAM/ROM with explicit allocation accounting (kilobytes)."""

    def __init__(self, ram_kb: int, rom_kb: int):
        if ram_kb <= 0 or rom_kb < 0:
            raise ValueError("memory sizes must be positive")
        self.ram_kb = ram_kb
        self.rom_kb = rom_kb
        self.used_kb = 0
        self._allocations: dict[str, int] = {}

    @property
    def free_kb(self) -> int:
        return self.ram_kb - self.used_kb

    def allocate(self, tag: str, kb: int) -> None:
        if kb <= 0:
            raise ValueError(f"allocation must be positive: {kb}")
        if kb > self.free_kb:
            raise OutOfMemoryError(
                f"{tag}: need {kb} KB, only {self.free_kb} KB free "
                f"of {self.ram_kb} KB"
            )
        self._allocations[tag] = self._allocations.get(tag, 0) + kb
        self.used_kb += kb

    def free(self, tag: str) -> int:
        """Release everything allocated under ``tag``; returns KB freed."""
        kb = self._allocations.pop(tag, 0)
        self.used_kb -= kb
        return kb

    def usage(self) -> dict[str, int]:
        return dict(self._allocations)


@dataclass
class DrainRates:
    """Battery drain in capacity-units per (virtual) second of activity."""

    idle: float = 0.01
    cpu: float = 0.20
    radio_tx: float = 0.50
    screen: float = 0.10


class Battery:
    """A battery with per-activity drain accounting."""

    def __init__(self, capacity: float = 3600.0,
                 rates: DrainRates | None = None,
                 efficiency: float = 1.0):
        if capacity <= 0:
            raise ValueError("battery capacity must be positive")
        if efficiency <= 0:
            raise ValueError("efficiency must be positive")
        self.capacity = capacity
        self.charge = capacity
        self.rates = rates or DrainRates()
        # >1.0 means the platform sips power (the paper: Palm OS battery
        # life is "approximately twice that of its rivals").
        self.efficiency = efficiency

    @property
    def level(self) -> float:
        """Remaining fraction in [0, 1]."""
        return max(0.0, self.charge / self.capacity)

    @property
    def is_dead(self) -> bool:
        return self.charge <= 0.0

    def drain(self, activity: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration: {seconds}")
        rate = getattr(self.rates, activity, None)
        if rate is None:
            raise ValueError(f"unknown activity {activity!r}")
        self.charge -= rate * seconds / self.efficiency
        if self.charge < 0:
            self.charge = 0.0

    def require(self) -> None:
        if self.is_dead:
            raise BatteryDeadError("battery exhausted")

    def recharge(self) -> None:
        self.charge = self.capacity
