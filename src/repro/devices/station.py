"""Mobile stations: the device component (ii) of the paper's model.

A :class:`MobileStation` is an IP node (it plugs into the network
substrate like any host) that additionally owns hardware models (CPU,
memory, battery), an OS profile, a position and a screen.  All
device-local work — rendering, application compute — is charged to the
CPU and battery, so device differences (Table 2) show up in end-to-end
transaction times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.addressing import IPAddress
from ..net.node import Node
from ..sim import Event, Simulator
from ..wireless.mobility import Mobile, Position
from .hardware import Battery, CPU, Memory
from .os import OSProfile, TaskTable

__all__ = ["Screen", "DeviceSpec", "MobileStation"]


@dataclass(frozen=True)
class Screen:
    """A small display: characters per line and visible lines."""

    width_px: int
    height_px: int
    color: bool

    @property
    def chars_per_line(self) -> int:
        return max(12, self.width_px // 6)

    @property
    def visible_lines(self) -> int:
        return max(4, self.height_px // 12)


@dataclass(frozen=True)
class DeviceSpec:
    """A Table 2 row: everything needed to instantiate the device."""

    vendor: str
    model: str
    os_name: str
    os_version: str
    cpu_name: str
    cpu_mhz: float
    ram_mb: int
    rom_mb: int
    screen: Screen
    note: str = ""

    @property
    def full_name(self) -> str:
        return f"{self.vendor} {self.model}"


class MobileStation(Node):
    """A handheld device with an IP stack, hardware limits and a position."""

    def __init__(self, sim: Simulator, spec: DeviceSpec, profile: OSProfile,
                 address: IPAddress, position: Position = Position(0, 0),
                 name: Optional[str] = None):
        super().__init__(sim, name or spec.full_name)
        self.spec = spec
        self.os = profile
        self.cpu = CPU(sim, spec.cpu_mhz, overhead_factor=profile.cpu_overhead)
        self.memory = Memory(ram_kb=spec.ram_mb * 1024,
                             rom_kb=spec.rom_mb * 1024)
        self.memory.allocate("os", profile.footprint_kb)
        self.battery = Battery(efficiency=profile.battery_efficiency)
        self.tasks = TaskTable(profile)
        self.mobile = Mobile(position)
        self.assign_address(address)

    # -- convenience pass-throughs -----------------------------------------
    @property
    def position(self) -> Position:
        return self.mobile.position

    def move_to(self, position: Position) -> None:
        self.mobile.move_to(position)

    # -- device-local work ---------------------------------------------------
    def compute(self, cycles: float, task: str = "app") -> Event:
        """Run ``cycles`` of application work on the device CPU.

        Returns the completion event; battery is drained for the busy
        time.  Raises BatteryDeadError if the battery is flat.
        """
        self.battery.require()
        self.tasks.start(task)
        duration = self.cpu.seconds_for(cycles)
        self.battery.drain("cpu", duration)
        done = self.cpu.execute(cycles)

        def finisher(env):
            yield done
            self.tasks.finish(task)

        self.sim.spawn(finisher(self.sim), name=f"{self.name}-compute")
        return done

    def screen_on(self, seconds: float) -> None:
        """Charge the battery for screen time (no virtual time passes)."""
        self.battery.drain("screen", seconds)

    def radio_active(self, seconds: float) -> None:
        self.battery.drain("radio_tx", seconds)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MobileStation {self.spec.full_name} ({self.os.name})>"
