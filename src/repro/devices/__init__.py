"""Mobile stations component (paper §4): devices, OSes, browsers, hardware."""

from .browser import CYCLES_PER_BYTE, Microbrowser, RenderedPage, UnsupportedContentError
from .embedded_db import EmbeddedDatabase, Record, SyncDelta, apply_delta
from .hardware import (
    Battery,
    BatteryDeadError,
    CPU,
    Memory,
    OutOfMemoryError,
)
from .os import (
    OS_PROFILES,
    PALM_OS,
    POCKET_PC,
    SYMBIAN_OS,
    OSProfile,
    TaskLimitError,
    TaskTable,
)
from .registry import TABLE2_DEVICES, build_station, device_spec
from .station import DeviceSpec, MobileStation, Screen

__all__ = [
    "CYCLES_PER_BYTE",
    "Microbrowser",
    "RenderedPage",
    "UnsupportedContentError",
    "EmbeddedDatabase",
    "Record",
    "SyncDelta",
    "apply_delta",
    "Battery",
    "BatteryDeadError",
    "CPU",
    "Memory",
    "OutOfMemoryError",
    "OS_PROFILES",
    "PALM_OS",
    "POCKET_PC",
    "SYMBIAN_OS",
    "OSProfile",
    "TaskLimitError",
    "TaskTable",
    "TABLE2_DEVICES",
    "build_station",
    "device_spec",
    "DeviceSpec",
    "MobileStation",
    "Screen",
]
