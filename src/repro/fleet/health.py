"""Active health checks with half-open re-admission.

One monitor process sweeps every active member each ``interval``
sim-seconds: a live gateway answers the probe in ``probe_cost``; a
crashed one eats the full ``timeout`` (a connect that never answers).
``unhealthy_threshold`` consecutive failures eject the member from the
ring; ejected members keep being probed — that *is* the half-open
state, exactly the :class:`~repro.resilience.breaker.CircuitBreaker`
idiom — and ``recovery_threshold`` consecutive successes re-admit
them.  Because ring membership is the only thing ejection touches,
sticky sessions survive: a station failed over during an ejection
keeps its adopted member, and re-admission restores the original
mapping only for fresh placements.

The FSM step (:meth:`HealthMonitor.record_probe`) is pure so tests can
drive it without a simulator.
"""

from __future__ import annotations

from ..sim import Counter, Simulator
from .pool import FleetMember, GatewayFleet

__all__ = ["HealthMonitor"]


class HealthMonitor:
    """Periodic prober + ejection/re-admission state machine."""

    def __init__(self, sim: Simulator, fleet: GatewayFleet,
                 interval: float = 2.0, timeout: float = 1.5,
                 unhealthy_threshold: int = 3,
                 recovery_threshold: int = 2,
                 probe_cost: float = 0.005,
                 phase: float = 0.111, metrics=None):
        if unhealthy_threshold < 1 or recovery_threshold < 1:
            raise ValueError("health thresholds must be >= 1")
        self.sim = sim
        self.fleet = fleet
        self.interval = interval
        self.timeout = timeout
        self.unhealthy_threshold = unhealthy_threshold
        self.recovery_threshold = recovery_threshold
        self.probe_cost = probe_cost
        # Distinct phase offset: monitor writes land in their own
        # kernel batches, never sharing one with autoscale/canary.
        self.phase = phase
        self.metrics = metrics
        self.stats = Counter()
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        # Only the single monitor process (spawned below) and the
        # build-time caller touch this; the phase offset keeps every
        # later write in its own kernel batch.
        self._started = True  # repro: noqa[shared-state]
        self.sim.spawn(self._probe_loop(), name="fleet-health")

    def _probe_loop(self):
        yield self.sim.timeout(self.phase)
        while True:
            yield self.sim.timeout(self.interval)
            # Insertion-ordered dict sweep: deterministic, and members
            # added mid-run (autoscale, canary) join the next sweep.
            for name in list(self.fleet.members):
                member = self.fleet.members[name]
                if member.state != "active":
                    continue
                yield from self._probe(member)

    def _probe(self, member: FleetMember):
        # Single-writer: only the one fleet-health process increments
        # these counters and mutates ring membership, at phase-offset
        # times no other monitor shares (sanitizer-verified).
        self.stats.incr("probes")  # repro: noqa[shared-state]
        if member.gateway.is_down:
            # Dead listener: the probe burns its full connect timeout.
            yield self.sim.timeout(self.timeout)
            self.record_probe(member, False)
        else:
            yield self.sim.timeout(self.probe_cost)
            self.record_probe(member, True)

    # -- pure FSM ----------------------------------------------------------
    def record_probe(self, member: FleetMember, ok: bool) -> None:
        if ok:
            member.probe_failures = 0
            if member.health == "ejected":
                member.probe_successes += 1
                if member.probe_successes >= self.recovery_threshold:
                    self._readmit(member)
            return
        self.stats.incr("probe_failures")
        member.probe_successes = 0
        member.probe_failures += 1
        if member.health == "healthy" and \
                member.probe_failures >= self.unhealthy_threshold:
            self._eject(member)

    def _eject(self, member: FleetMember) -> None:
        member.health = "ejected"
        member.probe_failures = 0
        self.fleet.ring.remove(member.name)  # repro: noqa[shared-state]
        self.stats.incr("ejections")
        self._record_pool_size()

    def _readmit(self, member: FleetMember) -> None:
        member.health = "healthy"
        member.probe_successes = 0
        if member.state == "active":
            self.fleet.ring.add(member.name)
        self.stats.incr("readmissions")
        self._record_pool_size()

    def _record_pool_size(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("fleet.serving_members").set(
                float(len(self.fleet.ring)))
