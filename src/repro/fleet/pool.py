"""The gateway shard pool.

A :class:`GatewayFleet` owns N running middleware instances ("members")
of any gateway class — WAP gateway, i-mode centre or web-clipping
proxy.  Member i listens on ``base_port + i * port_stride`` (the PR 8
registry scheme: endpoints are always published in the name registry
and derived from the primary's actual port, never hardcoded), and the
fleet's consistent-hash ring decides which member serves which
session.

Members are never destroyed mid-run: retirement is *graceful* — the
member leaves the ring so no new request routes to it, while in-flight
requests on its still-running gateway complete normally.  That is what
makes canary replacement and scale-down lossless (zero stranded
sessions), and it mirrors real connection-draining balancers.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Counter, Simulator
from .ring import HashRing

__all__ = ["FleetMember", "GatewayFleet"]


class FleetMember:
    """One gateway instance in the pool."""

    __slots__ = ("index", "name", "gateway", "make_session", "port",
                 "cell_index", "version", "handicap", "state", "health",
                 "probe_failures", "probe_successes", "added_at",
                 "retired_at", "retire_reason")

    def __init__(self, index: int, name: str, gateway, make_session,
                 port: int, cell_index: int, version: str,
                 handicap: float, added_at: float):
        self.index = index
        self.name = name
        self.gateway = gateway
        self.make_session = make_session
        self.port = port
        self.cell_index = cell_index
        self.version = version
        self.handicap = handicap
        self.state = "active"      # active | retired
        self.health = "healthy"    # healthy | ejected
        self.probe_failures = 0
        self.probe_successes = 0
        self.added_at = added_at
        self.retired_at: Optional[float] = None
        self.retire_reason: Optional[str] = None

    @property
    def serving(self) -> bool:
        return self.state == "active" and self.health == "healthy"

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "index": self.index,
            "port": self.port,
            "cell": self.cell_index,
            "version": self.version,
            "state": self.state,
            "health": self.health,
            "added_at": self.added_at,
            "retired_at": self.retired_at,
            "retire_reason": self.retire_reason,
        }


class GatewayFleet:
    """N middleware instances plus the ring that shards load over them.

    ``make_gateway(index, port, version, handicap, cell_index)`` is the
    builder-supplied factory returning ``(gateway, make_session)``; the
    fleet only decides *when* members appear and which ports and cells
    they get, so it works unchanged for every middleware class.
    """

    def __init__(self, sim: Simulator, make_gateway: Callable,
                 base_port: int, port_stride: int = 20,
                 virtual_nodes: int = 64, n_cells: int = 1):
        if port_stride < 1:
            raise ValueError(
                f"port_stride must be >= 1, got {port_stride}")
        self.sim = sim
        self.ring = HashRing(virtual_nodes=virtual_nodes)
        self.base_port = base_port
        self.port_stride = port_stride
        # Radio cells do not scale with middleware: members past the
        # initial pool share the existing cells round-robin.
        self.n_cells = max(1, n_cells)
        self._make_gateway = make_gateway
        self.members: dict[str, FleetMember] = {}
        self.stats = Counter()
        self.default_version = "v1"
        self.default_handicap = 0.0
        self._next_index = 0

    # -- membership --------------------------------------------------------
    def add_member(self, version: Optional[str] = None,
                   handicap: Optional[float] = None,
                   cell_index: Optional[int] = None) -> FleetMember:
        # Membership changes come only from the phase-offset monitor
        # loops (health 0.111 / autoscale 0.222 / canary 0.333), so no
        # two writers ever share a same-timestamp kernel batch; the
        # dynamic sanitizer confirms this over the fleet scenarios.
        index = self._next_index
        self._next_index += 1  # repro: noqa[shared-state]
        if version is None:
            version = self.default_version
        if handicap is None:
            handicap = (self.default_handicap
                        if version == self.default_version else 0.0)
        if cell_index is None:
            cell_index = index % self.n_cells
        port = self.base_port + index * self.port_stride
        name = f"gw-{index}"
        gateway, make_session = self._make_gateway(
            index, port, version, handicap, cell_index)
        member = FleetMember(index, name, gateway, make_session, port,
                             cell_index, version, handicap,
                             added_at=self.sim.now)
        self.members[name] = member  # repro: noqa[shared-state]
        self.ring.add(name)  # repro: noqa[shared-state]
        self.stats.incr("members_added")  # repro: noqa[shared-state]
        return member

    def retire_member(self, name: str,
                      reason: str = "retired") -> FleetMember:
        """Graceful drain: leave the ring, keep serving in-flight work."""
        member = self.members[name]
        if member.state != "active":
            return member
        member.state = "retired"
        member.retired_at = self.sim.now
        member.retire_reason = reason
        self.ring.remove(name)
        self.stats.incr("members_retired")
        return member

    # -- views -------------------------------------------------------------
    def member(self, name: str) -> FleetMember:
        return self.members[name]

    def active_members(self) -> list[FleetMember]:
        return [m for m in self.members.values() if m.state == "active"]

    def serving_members(self) -> list[FleetMember]:
        return [m for m in self.members.values() if m.serving]

    def gateways(self) -> list:
        """Every gateway ever started, in member order (for reports)."""
        return [m.gateway for m in self.members.values()]
