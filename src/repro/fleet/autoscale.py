"""Queue-depth autoscaling with hysteresis.

Every ``interval`` the scaler reads the live per-member batcher-depth
gauges (``gateway.<member>.queue_depth``, exported by
:class:`~repro.middleware.base.RequestBatcher`) and compares the mean
serving depth against two watermarks: above ``high_watermark`` it adds
a member, below ``low_watermark`` it gracefully retires the
newest-added one.  The watermark gap plus a ``cooldown`` after every
action is the hysteresis that keeps oscillating load from flapping the
pool (the no-flap property the test suite pins).

:meth:`AutoScaler.decide` is pure — tests drive it with synthetic
depths and a fake clock.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Counter, Simulator
from .pool import GatewayFleet

__all__ = ["AutoScaler"]


class AutoScaler:
    """Hysteresis scaler over live queue-depth gauges."""

    def __init__(self, sim: Simulator, fleet: GatewayFleet, metrics,
                 high_watermark: float = 8.0, low_watermark: float = 1.0,
                 min_members: int = 1, max_members: int = 8,
                 cooldown: float = 30.0, interval: float = 5.0,
                 phase: float = 0.222):
        if low_watermark >= high_watermark:
            raise ValueError(
                "low_watermark must sit below high_watermark "
                f"(got {low_watermark} >= {high_watermark})")
        if min_members < 1 or max_members < min_members:
            raise ValueError(
                f"need 1 <= min_members <= max_members, got "
                f"{min_members}..{max_members}")
        self.sim = sim
        self.fleet = fleet
        self.metrics = metrics
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.min_members = min_members
        self.max_members = max_members
        self.cooldown = cooldown
        self.interval = interval
        self.phase = phase
        self.stats = Counter()
        self.last_action_at: Optional[float] = None
        self.events: list[dict] = []
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        # Scaler state is written only by the single fleet-autoscale
        # process at phase-offset times (0.222) no other monitor
        # shares; the dynamic sanitizer confirms no same-batch overlap.
        self._started = True  # repro: noqa[shared-state]
        self.sim.spawn(self._scale_loop(), name="fleet-autoscale")

    def _scale_loop(self):
        yield self.sim.timeout(self.phase)
        while True:
            yield self.sim.timeout(self.interval)
            self.tick()

    # -- pure decision -----------------------------------------------------
    def decide(self, depths: list[float], n_members: int,
               now: float) -> Optional[str]:
        if not depths:
            return None
        if self.last_action_at is not None and \
                now - self.last_action_at < self.cooldown:
            return None
        mean_depth = sum(depths) / len(depths)
        if mean_depth > self.high_watermark and \
                n_members < self.max_members:
            return "up"
        if mean_depth < self.low_watermark and \
                n_members > self.min_members:
            return "down"
        return None

    def tick(self) -> Optional[str]:
        serving = self.fleet.serving_members()
        depths = [
            self.metrics.gauge(f"gateway.{m.name}.queue_depth").value
            for m in serving
        ]
        action = self.decide(depths, len(serving), self.sim.now)
        if action == "up":
            member = self.fleet.add_member()
            self.stats.incr("scale_ups")  # repro: noqa[shared-state]
            self.events.append({"at": self.sim.now, "action": "up",  # repro: noqa[shared-state]
                                "member": member.name})
            self.last_action_at = self.sim.now  # repro: noqa[shared-state]
        elif action == "down":
            # Newest first: the longest-lived members hold the most
            # sticky sessions, so draining the newest strands least.
            victim = max(serving, key=lambda m: m.index)
            self.fleet.retire_member(victim.name, reason="scale-down")
            self.stats.incr("scale_downs")
            self.events.append({"at": self.sim.now, "action": "down",
                                "member": victim.name})
            self.last_action_at = self.sim.now
        return action
