"""Canary rollout with automatic SLO rollback.

At ``deploy_at`` the controller replaces ``ceil(fraction * N)`` serving
members with a "v2" gateway variant (same middleware class, optionally
handicapped — the chaos ``canary-regression`` scenario plants a
deliberate per-request service-time penalty).  Replacement is the
fleet's graceful retirement: the v1 member leaves the ring, its
still-running gateway drains in-flight work, and the ring remaps only
that member's keys to the v2 instance — zero sessions stranded.

From then on, every ``window`` sim-seconds the controller compares the
canary cohort against the v1 baseline over the balancer's sliding
observation window: p95 latency worse than ``p95_ratio`` times the
baseline, or a success rate more than ``success_delta`` below it, is a
violation.  ``violations`` consecutive bad windows roll the canary
back (v1 replacements at the same radio cells); ``healthy_windows``
consecutive good ones promote v2 fleet-wide.  Windows without
``min_samples`` observations on both sides are abstentions — they
reset nothing and decide nothing.

:meth:`CanaryController.evaluate` is pure so tests can pin the exact
threshold where rollback triggers.
"""

from __future__ import annotations

import math
from ..sim import Counter, Simulator
from .balancer import LoadBalancer
from .pool import GatewayFleet

__all__ = ["CanaryController"]


def _p95(latencies: list[float]) -> float:
    """Nearest-rank p95 (matches repro.faults.chaos.percentile)."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = max(1, math.ceil(0.95 * len(ordered)))
    return ordered[rank - 1]


class CanaryController:
    """Deploy a v2 cohort, judge SLO windows, promote or roll back."""

    IDLE = "IDLE"
    CANARY = "CANARY"
    PROMOTED = "PROMOTED"
    ROLLED_BACK = "ROLLED_BACK"

    def __init__(self, sim: Simulator, fleet: GatewayFleet,
                 balancer: LoadBalancer, fraction: float = 0.25,
                 deploy_at: float = 0.0, handicap: float = 0.0,
                 window: float = 20.0, min_samples: int = 5,
                 p95_ratio: float = 1.5, success_delta: float = 0.1,
                 violations: int = 2, healthy_windows: int = 3,
                 phase: float = 0.333):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(
                f"canary fraction must be in (0, 1], got {fraction}")
        if violations < 1 or healthy_windows < 1:
            raise ValueError("canary window counts must be >= 1")
        self.sim = sim
        self.fleet = fleet
        self.balancer = balancer
        self.fraction = fraction
        self.deploy_at = deploy_at
        self.handicap = handicap
        self.window = window
        self.min_samples = min_samples
        self.p95_ratio = p95_ratio
        self.success_delta = success_delta
        self.violations = violations
        self.healthy_windows = healthy_windows
        self.phase = phase
        self.state = CanaryController.IDLE
        self.stats = Counter()
        self.canary_members: list[str] = []
        self.history: list[dict] = []
        self._bad_windows = 0
        self._good_windows = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        # Controller state is written only by the single fleet-canary
        # process at phase-offset times (0.333) no other monitor
        # shares; the dynamic sanitizer confirms no same-batch overlap.
        self._started = True  # repro: noqa[shared-state]
        self.sim.spawn(self._run(), name="fleet-canary")

    def _run(self):
        yield self.sim.timeout(self.deploy_at + self.phase)
        self.deploy()
        while self.state == CanaryController.CANARY:
            yield self.sim.timeout(self.window)
            self._judge_window()

    # -- rollout mechanics -------------------------------------------------
    def deploy(self) -> None:
        baseline = [m for m in self.fleet.serving_members()
                    if m.version != "v2"]
        if not baseline:
            return
        count = max(1, math.ceil(self.fraction * len(baseline)))
        # Highest-index members: deterministic, and the most recently
        # added members carry the fewest long-lived sticky sessions.
        targets = sorted(baseline, key=lambda m: m.index)[-count:]
        for old in targets:
            self.fleet.retire_member(old.name, reason="canary-replace")
            fresh = self.fleet.add_member(version="v2",
                                          handicap=self.handicap,
                                          cell_index=old.cell_index)
            self.canary_members.append(fresh.name)  # repro: noqa[shared-state]
        self.state = CanaryController.CANARY  # repro: noqa[shared-state]
        self.stats.incr("deploys")  # repro: noqa[shared-state]

    def rollback(self) -> None:
        for name in self.canary_members:
            member = self.fleet.members[name]
            if member.state != "active":
                continue
            self.fleet.retire_member(name, reason="canary-rollback")
            self.fleet.add_member(version="v1", handicap=0.0,
                                  cell_index=member.cell_index)
        self.state = CanaryController.ROLLED_BACK
        self.stats.incr("rollbacks")

    def promote(self) -> None:
        for member in list(self.fleet.serving_members()):
            if member.version == "v2":
                continue
            self.fleet.retire_member(member.name,
                                     reason="canary-promote")
            self.fleet.add_member(version="v2", handicap=self.handicap,
                                  cell_index=member.cell_index)
        # Autoscale additions after promotion are v2 builds too.
        self.fleet.default_version = "v2"
        self.fleet.default_handicap = self.handicap
        self.state = CanaryController.PROMOTED
        self.stats.incr("promotions")

    # -- judgement ---------------------------------------------------------
    def evaluate(self, canary: dict, baseline: dict) -> str:
        """Pure verdict: 'violation' | 'healthy' | 'insufficient'.

        ``canary`` and ``baseline`` carry ``count``, ``successes`` and
        ``latencies`` (successful-attempt latencies only).
        """
        if canary["count"] < self.min_samples or \
                baseline["count"] < self.min_samples:
            return "insufficient"
        canary_success = canary["successes"] / canary["count"]
        base_success = baseline["successes"] / baseline["count"]
        if canary_success < base_success - self.success_delta:
            return "violation"
        base_p95 = _p95(baseline["latencies"])
        if base_p95 > 0 and \
                _p95(canary["latencies"]) > self.p95_ratio * base_p95:
            return "violation"
        return "healthy"

    def _judge_window(self) -> None:
        since = self.sim.now - self.window
        active_canaries = [
            name for name in self.canary_members
            if self.fleet.members[name].state == "active"
        ]
        baseline_names = [m.name for m in self.fleet.serving_members()
                          if m.version != "v2"]
        canary = self.balancer.window_stats(active_canaries, since)
        baseline = self.balancer.window_stats(baseline_names, since)
        verdict = self.evaluate(canary, baseline)
        self.history.append({  # repro: noqa[shared-state]
            "at": self.sim.now,
            "verdict": verdict,
            "canary_count": canary["count"],
            "canary_successes": canary["successes"],
            "canary_p95": _p95(canary["latencies"]),
            "baseline_count": baseline["count"],
            "baseline_successes": baseline["successes"],
            "baseline_p95": _p95(baseline["latencies"]),
        })
        self.stats.incr(f"windows_{verdict}")
        if verdict == "violation":
            self._bad_windows += 1  # repro: noqa[shared-state]
            self._good_windows = 0  # repro: noqa[shared-state]
            if self._bad_windows >= self.violations:
                self.rollback()
        elif verdict == "healthy":
            self._good_windows += 1
            self._bad_windows = 0
            if self._good_windows >= self.healthy_windows:
                self.promote()

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "canary_members": list(self.canary_members),
            "windows": list(self.history),
            "stats": self.stats.as_dict(),
        }
