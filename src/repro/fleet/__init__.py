"""Gateway fleets: shard pool, balancer, health, autoscale, canary.

DESIGN.md §14.  A :class:`GatewayFleet` runs N instances of any
middleware class (ports derived from the PR 8 registry scheme); a
:class:`LoadBalancer` fronts them with consistent-hash session
affinity; a :class:`HealthMonitor` ejects and re-admits members with
half-open probing; an :class:`AutoScaler` grows and shrinks the pool
on live batcher-depth gauges; and a :class:`CanaryController` deploys
a v2 variant to a fraction of the ring and auto-promotes or rolls it
back on sliding SLO windows.  All of it on the simulation clock, all
of it seeded — same-seed fleet runs are byte-identical.
"""

from .autoscale import AutoScaler
from .balancer import LoadBalancer
from .canary import CanaryController
from .health import HealthMonitor
from .pool import FleetMember, GatewayFleet
from .report import fleet_report
from .ring import HashRing

__all__ = [
    "AutoScaler",
    "CanaryController",
    "FleetMember",
    "GatewayFleet",
    "HashRing",
    "HealthMonitor",
    "LoadBalancer",
    "fleet_report",
]
