"""Consistent-hash load balancer over a gateway fleet.

The balancer is deliberately *pure control plane*: it never spawns a
process and never touches the event queue.  It turns a station into an
ordered candidate list (ring order from the station's hash point), and
:class:`~repro.resilience.session.ResilientSession` does the actual
failover — so a fleet request path is the classic resilient path with
the static route list swapped for a live provider.

Device-side sessions to members are created lazily and cached per
``(station, member)``; session construction is side-effect free (the
WSP/i-mode/Palm transports connect on first use), so lazy creation is
invisible to the virtual timeline.  The balancer also collects the
per-attempt SLO observations (ok/latency per member) the canary
controller judges windows from.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..sim import Counter, Simulator
from .pool import FleetMember, GatewayFleet

__all__ = ["LoadBalancer"]


class LoadBalancer:
    """Session-affine front for a :class:`GatewayFleet`."""

    def __init__(self, sim: Simulator, fleet: GatewayFleet,
                 direct_factory: Optional[Callable] = None,
                 sample_window: float = 120.0):
        self.sim = sim
        self.fleet = fleet
        # Optional last-resort route appended after every member (the
        # ResilienceConfig.direct_fallback degenerate path).
        self._direct_factory = direct_factory
        self.sample_window = sample_window
        self.stats = Counter()
        self._sessions: dict[tuple[str, str], object] = {}
        self._direct: dict[str, object] = {}
        # member name -> deque[(virtual time, ok, elapsed)]
        self.samples: dict[str, deque] = {}

    # -- placement ---------------------------------------------------------
    def candidates(self, key: str) -> list[FleetMember]:
        """Serving members in ring order for ``key`` (affinity first).

        The ring only ever holds serving members (health ejection and
        retirement both remove); if *everything* is ejected we fall
        back to all active members rather than refusing outright —
        a fully-dark fleet should fail per-request, not instantly.
        """
        names = self.fleet.ring.candidates(key)
        if names:
            return [self.fleet.member(name) for name in names]
        return self.fleet.active_members()

    def member_for(self, key: str) -> FleetMember:
        """Primary owner of ``key`` (used for radio-cell pinning)."""
        members = self.candidates(key)
        if not members:
            raise LookupError("fleet has no active members")
        return members[0]

    # -- data plane --------------------------------------------------------
    def _session_for(self, station, member: FleetMember):
        cache_key = (station.name, member.name)
        session = self._sessions.get(cache_key)
        if session is None:
            session = member.make_session(station)
            # Attribution for the SLO observer: which member a
            # ResilientSession attempt actually hit.
            session._fleet_member = member.name
            self._sessions[cache_key] = session
            self.stats.incr("sessions_created")
        return session

    def _direct_for(self, station):
        session = self._direct.get(station.name)
        if session is None:
            session = self._direct_factory(station)
            self._direct[station.name] = session
        return session

    def provider(self, station) -> Callable[[], list]:
        """Routes callable for one station's ResilientSession."""
        key = station.name

        def routes() -> list:
            members = self.candidates(key)
            sessions = [self._session_for(station, m) for m in members]
            if self._direct_factory is not None:
                sessions.append(self._direct_for(station))
            return sessions

        return routes

    # -- SLO observations --------------------------------------------------
    def observe(self, session, ok: bool, elapsed: float) -> None:
        """ResilientSession per-attempt observer."""
        name = getattr(session, "_fleet_member", None)
        if name is None:
            return
        window = self.samples.get(name)
        if window is None:
            window = self.samples[name] = deque()
        window.append((self.sim.now, ok, elapsed))
        horizon = self.sim.now - self.sample_window
        while window and window[0][0] < horizon:
            window.popleft()
        self.stats.incr("observations")
        if not ok:
            self.stats.incr("observed_failures")

    def window_stats(self, names: list[str], since: float) -> dict:
        """Aggregate (count/successes/latencies) for members since t."""
        count = 0
        successes = 0
        latencies: list[float] = []
        for name in names:
            window = self.samples.get(name)
            if not window:
                continue
            for when, ok, elapsed in window:
                if when < since:
                    continue
                count += 1
                if ok:
                    successes += 1
                    latencies.append(elapsed)
        return {"count": count, "successes": successes,
                "latencies": latencies}
