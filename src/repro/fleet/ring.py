"""Consistent-hash ring with virtual nodes.

Session affinity that survives member churn: each member owns
``virtual_nodes`` points on a 64-bit circle, a session key maps to the
first point clockwise of its own hash, and removing one member only
remaps the keys that member owned (~1/N of them) instead of reshuffling
everything the way ``hash(key) % N`` would.

Hashes come from SHA-256, never Python's builtin ``hash`` — the
builtin is salted per interpreter run, which would break byte-identical
same-seed replays.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

__all__ = ["HashRing"]


def _hash64(key: str) -> int:
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Ordered set of member names on a 64-bit consistent-hash circle."""

    def __init__(self, virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise ValueError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.virtual_nodes = virtual_nodes
        # Sorted, parallel arrays: point hashes and the owning member.
        self._points: list[int] = []
        self._owners: list[str] = []
        self._members: set[str] = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def members(self) -> list[str]:
        return sorted(self._members)

    def _member_points(self, member: str) -> list[int]:
        return [_hash64(f"{member}#{i}")
                for i in range(self.virtual_nodes)]

    def add(self, member: str) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for point in self._member_points(member):
            index = bisect_right(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, member)

    def remove(self, member: str) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        keep_points: list[int] = []
        keep_owners: list[str] = []
        for point, owner in zip(self._points, self._owners):
            if owner != member:
                keep_points.append(point)
                keep_owners.append(owner)
        self._points = keep_points
        self._owners = keep_owners

    def candidates(self, key: str, count: int = 0) -> list[str]:
        """Distinct members in ring order starting at ``key``'s point.

        The first entry is the key's primary owner; the rest are the
        natural failover order (what the next owner would be if each
        preceding member vanished).  ``count`` caps the list (0 = all
        members).
        """
        if not self._points:
            return []
        limit = len(self._members) if count < 1 else min(
            count, len(self._members))
        start = bisect_right(self._points, _hash64(key))
        found: list[str] = []
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in found:
                found.append(owner)
                if len(found) >= limit:
                    break
        return found

    def owner(self, key: str) -> str:
        """The primary member for ``key`` (ring must be non-empty)."""
        names = self.candidates(key, count=1)
        if not names:
            raise LookupError("hash ring is empty")
        return names[0]
