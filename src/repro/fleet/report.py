"""Fleet report section for bench and chaos reports."""

from __future__ import annotations

__all__ = ["fleet_report", "stranded_sessions"]


def stranded_sessions(system) -> int:
    """Sessions that exhausted every route (lost to member churn).

    The canary-regression acceptance gate: graceful ring retirement
    must strand nothing, so any station whose ResilientSession ever
    reported ``exhausted`` counts against it.
    """
    stranded = 0
    for handle in getattr(system, "stations", []):
        stats = getattr(handle.session, "stats", None)
        if stats is None:
            continue
        if stats.as_dict().get("exhausted", 0) > 0:
            stranded += 1
    return stranded


def fleet_report(system) -> dict:
    """JSON-friendly snapshot of the fleet's control plane."""
    fleet = getattr(system, "fleet", None)
    if fleet is None:
        return {}
    out = {
        "serving": len(fleet.ring),
        "members": [m.as_dict() for m in fleet.members.values()],
        "stats": fleet.stats.as_dict(),
        "stranded_sessions": stranded_sessions(system),
    }
    balancer = getattr(system, "balancer", None)
    if balancer is not None:
        out["balancer"] = balancer.stats.as_dict()
    monitor = getattr(system, "health_monitor", None)
    if monitor is not None:
        out["health"] = monitor.stats.as_dict()
    scaler = getattr(system, "autoscaler", None)
    if scaler is not None:
        out["autoscale"] = {"stats": scaler.stats.as_dict(),
                            "events": list(scaler.events)}
    canary = getattr(system, "canary", None)
    if canary is not None:
        out["canary"] = canary.as_dict()
    return out
