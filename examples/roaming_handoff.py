"""Mobile IP roaming + wireless TCP enhancements (paper §5.2).

Run:  python examples/roaming_handoff.py

Part 1 — Mobile IP: a mobile node downloads a file over TCP from a
correspondent host while roaming from its home network to a foreign
network.  The home agent tunnels; the TCP connection survives.

Part 2 — wireless TCP: the same lossy-wireless transfer with plain
Reno vs a snoop agent on the base station, showing local recovery
shields the fixed sender.
"""

from repro.net import Network, Subnet, TCPStack, IPAddress
from repro.net.mobile import ForeignAgent, HomeAgent, MobileIPClient, \
    RoamingManager, SnoopAgent
from repro.sim import SeedBank, Simulator


def part1_mobile_ip() -> None:
    print("=== Part 1: TCP connection survives a Mobile IP handoff ===")
    sim = Simulator()
    net = Network(sim)
    core = net.add_node("core", forwarding=True)
    ha_router = net.add_node("home-router", forwarding=True)
    fa_router = net.add_node("visited-router", forwarding=True)
    server = net.add_node("server")
    net.connect(core, ha_router, Subnet.parse("10.1.0.0/24"), delay=0.002)
    net.connect(core, fa_router, Subnet.parse("10.2.0.0/24"), delay=0.002)
    net.connect(core, server, Subnet.parse("10.3.0.0/24"), delay=0.002)

    mobile = net.add_node("mobile")
    home_address = IPAddress.parse("10.1.0.100")
    roaming = RoamingManager(net, mobile, home_address)
    roaming.attach(ha_router)
    net.build_routes()

    ha = HomeAgent(ha_router)
    fa = ForeignAgent(fa_router)
    client = MobileIPClient(mobile, home_address, ha_router.primary_address)

    tcp_server = TCPStack(server)
    tcp_mobile = TCPStack(mobile, mss=512)
    listener = tcp_server.listen(80)
    total = 120_000
    received = bytearray()

    def serve(env):
        conn = yield listener.accept()
        conn.send(b"D" * total)

    def download(env):
        conn = tcp_mobile.connect(server.primary_address, 80, mss=512)
        yield conn.established_event
        conn.send(b"G")  # trigger
        while len(received) < total:
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)
        print(f"  download complete at t={env.now:.2f}s "
              f"({len(received)} bytes)")

    def roam(env):
        yield env.timeout(0.15)
        print(f"  t={env.now:.2f}s: leaving home network...")
        roaming.attach(fa_router)
        reply = yield client.register_via(fa.care_of_address)
        print(f"  t={env.now:.2f}s: registered via foreign agent "
              f"(accepted={reply.accepted})")

    sim.spawn(serve(sim))
    sim.spawn(download(sim))
    sim.spawn(roam(sim))
    sim.run(until=600)
    assert bytes(received) == b"D" * total
    print(f"  datagrams tunneled by home agent: "
          f"{ha_router.stats.get('mip_tunneled')}")
    print()


def lossy_transfer(use_snoop: bool, seed: int = 11) -> tuple[float, int]:
    sim = Simulator()
    net = Network(sim)
    fixed = net.add_node("fixed")
    base = net.add_node("base", forwarding=True)
    mobile = net.add_node("mobile")
    net.connect(fixed, base, Subnet.parse("10.0.1.0/24"),
                bandwidth_bps=10_000_000, delay=0.010)
    net.connect(mobile, base, Subnet.parse("10.0.2.0/24"),
                bandwidth_bps=2_000_000, delay=0.004,
                loss_rate=0.08, loss_stream=SeedBank(seed).stream("w"))
    net.build_routes()
    if use_snoop:
        SnoopAgent(base, {mobile.primary_address})

    tcp_f = TCPStack(fixed, mss=512)
    tcp_m = TCPStack(mobile, mss=512)
    listener = tcp_m.listen(80)
    total = 60_000
    received = bytearray()
    finish = {}

    def mobile_side(env):
        conn = yield listener.accept()
        while len(received) < total:
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)
        finish["t"] = env.now

    def fixed_side(env):
        conn = tcp_f.connect(mobile.primary_address, 80, mss=512)
        finish["conn"] = conn
        yield conn.established_event
        conn.send(b"S" * total)

    sim.spawn(mobile_side(sim))
    sim.spawn(fixed_side(sim))
    sim.run(until=600)
    assert bytes(received) == b"S" * total
    conn = finish["conn"]
    sender_loss_events = (conn.stats.get("fast_retransmits")
                          + conn.stats.get("timeouts"))
    return finish["t"], sender_loss_events


def part2_snoop() -> None:
    print("=== Part 2: snoop agent vs plain TCP over 8% wireless loss ===")
    t_plain, events_plain = lossy_transfer(use_snoop=False)
    t_snoop, events_snoop = lossy_transfer(use_snoop=True)
    print(f"  plain TCP : {t_plain:6.2f}s, "
          f"{events_plain} sender loss events")
    print(f"  with snoop: {t_snoop:6.2f}s, "
          f"{events_snoop} sender loss events")
    print(f"  -> snoop hides {events_plain - events_snoop} loss events "
          f"from the fixed sender")


def main() -> None:
    part1_mobile_ip()
    part2_snoop()


if __name__ == "__main__":
    main()
