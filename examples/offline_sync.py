"""Offline-first field work: an embedded database syncing to the host.

Run:  python examples/offline_sync.py

The paper (§7) highlights embedded/mobile databases that "accommodate
the low-bandwidth constraints of a wireless-handheld network".  Here a
field inspector's Palm i705 keeps inspection notes in an on-device
store, works through a connectivity gap, and delta-syncs with the host
when coverage returns — shipping only changed records.  Meanwhile the
back office pushes new assignments the other way.
"""

from repro.db import SyncClient, SyncService
from repro.devices import EmbeddedDatabase, build_station
from repro.net import IPAddress, Network, Subnet
from repro.sim import Simulator
from repro.wireless import AccessPoint, ChannelModel, Position, wlan_standard


def main() -> None:
    sim = Simulator()
    net = Network(sim)
    host = net.add_node("host")
    ap_router = net.add_node("ap", forwarding=True)
    net.connect(host, ap_router, Subnet.parse("10.0.0.0/24"), delay=0.002)
    ap = AccessPoint(ap_router, Position(0, 0), wlan_standard("802.11b"),
                     ChannelModel(),
                     wireless_subnet=Subnet.parse("10.0.1.0/24"))
    net.build_routes()

    service = SyncService(host)
    back_office = service.namespace("inspections")

    palm = build_station(sim, "Palm i705", IPAddress.parse("10.0.1.50"),
                         name="inspector-palm")
    net.adopt(palm)
    association = ap.associate(palm, palm.mobile)
    notes = EmbeddedDatabase(palm, name="inspections")
    client = SyncClient(notes, host.primary_address,
                        namespace="inspections")

    def day_in_the_field(env):
        # Morning: the back office files today's assignments.
        back_office.put("site-17", {"status": "assigned",
                                    "address": "17 Main St"})
        back_office.put("site-22", {"status": "assigned",
                                    "address": "22 Oak Ave"})

        # First sync at the depot: assignments arrive on the device.
        summary = yield client.sync()
        print(f"t={env.now:6.2f}s  depot sync: pulled "
              f"{summary['pulled']} assignments "
              f"({notes.footprint_kb} KB on device, "
              f"battery {palm.battery.level * 100:.1f}%)")

        # Drive out of coverage; work offline.
        association.link.take_down()
        print(f"t={env.now:6.2f}s  out of coverage — working offline")
        yield env.timeout(3600.0)  # an hour in the field
        notes.put("site-17", {"status": "inspected", "result": "pass",
                              "address": "17 Main St"})
        notes.put("site-22", {"status": "inspected",
                              "result": "fail: corroded valve",
                              "address": "22 Oak Ave"})
        notes.put("site-extra", {"status": "drive-by note",
                                 "result": "graffiti reported"})

        # A sync attempt out of coverage fails gracefully.
        attempt = yield client.sync(timeout=2.0)
        print(f"t={env.now:6.2f}s  sync out of coverage: "
              f"{'failed cleanly' if attempt is None else 'unexpected!'}")

        # Coverage returns; only the three changed records cross the air.
        association.link.bring_up()
        summary = yield client.sync()
        print(f"t={env.now:6.2f}s  back in coverage: pushed "
              f"{summary['pushed']} records "
              f"({summary['bytes_up']} bytes up), "
              f"pulled {summary['pulled']}")

        print("\nHost's view after the day:")
        for key in sorted(back_office.records):
            record = back_office.records[key]
            print(f"  {key}: {record.value}")

    sim.spawn(day_in_the_field(sim))
    sim.run(until=7200)


if __name__ == "__main__":
    main()
