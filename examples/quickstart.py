"""Quickstart: build Figure 2's mobile commerce system and buy something.

Run:  python examples/quickstart.py

Builds the full six-component stack (Toshiba E740 on GPRS, WAP gateway,
web + database host), validates the structure against the paper's
Figure 2, runs one end-to-end purchase and prints the ledger.
"""

from repro.apps import CommerceApp
from repro.core import MCSystemBuilder, TransactionEngine, render_structure
from repro.core.model import MC_FLOW_CHAIN
from repro.core.render import render_flow_chain


def main() -> None:
    # 1. Build the system: middleware + bearer are constructor choices.
    system = MCSystemBuilder(
        middleware="WAP",
        bearer=("cellular", "GPRS"),
    ).build()

    # 2. Mount an application (server-side programs + schema) and fund a
    #    customer account on the host's payment processor.
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 100_000)  # $1000.00

    # 3. Provision a Table 2 device and attach it to the bearer.
    handle = system.add_station("Toshiba E740")

    # 4. The model mirrors the paper's Figure 2 — validate it.
    report = system.model.validate_mc()
    print(render_structure(system.model, title="MC system (Figure 2)"))
    print()
    print("Request path:",
          render_flow_chain(system.model, MC_FLOW_CHAIN))
    print(f"Figure 2 validation: "
          f"{'OK' if report.valid else report.violations}")
    print()

    # 5. Run one end-to-end transaction and report.
    engine = TransactionEngine(system)
    done = engine.run_flow(
        handle, shop.browse_and_buy(item_id=1, account="ann", user="ann"))
    system.run(until=120)

    record = done.value
    print(f"Transaction #{record.txn_id} ({record.flow_name}) "
          f"on {record.client_name}:")
    for step in record.steps:
        print(f"  - {step}")
    print(f"  outcome: {'OK' if record.ok else record.error}, "
          f"latency {record.latency:.3f}s, "
          f"{record.bytes_received} bytes received")
    print(f"  account balance now ${system.host.payment.balance('ann') / 100:.2f}")
    print(f"  device battery at "
          f"{handle.station.battery.level * 100:.1f}%")


if __name__ == "__main__":
    main()
