"""Mobile inventory tracking and dispatching — the paper's motivating
"not feasible for electronic commerce" scenario (§3, Table 1).

Run:  python examples/inventory_dispatch.py

Three delivery drivers roam a metro area on GPRS, posting live
positions to the host as they move between cells (automatic handoff).
A dispatcher then assigns the nearest idle vehicle to a pickup.
"""

from repro.apps import InventoryApp
from repro.core import MCSystemBuilder, TransactionEngine
from repro.db import execute
from repro.wireless import LinearPath, Position


def main() -> None:
    system = MCSystemBuilder(middleware="WAP",
                             bearer=("cellular", "GPRS")).build()
    fleet = InventoryApp()
    system.mount_application(fleet)

    # A second cell 4 km east so a driver crossing town hands off.
    bearer = system.model.component("wireless-networks").implementation
    bearer.add_base_station("cell-1", Position(4000.0, 0.0))
    system.network.build_routes()

    engine = TransactionEngine(system)

    drivers = []
    for index, device in enumerate(
            ["Palm i705", "Compaq iPAQ H3870", "Nokia 9290 Communicator"]):
        handle = system.add_station(device, position=Position(index * 50, 0))
        bearer.enable_auto_handoff(handle.attachment)
        drivers.append(handle)

    # Driver 0 drives across town (through the cell boundary).
    LinearPath(system.sim, drivers[0].station.mobile,
               waypoints=[Position(4200.0, 0.0)], speed=400.0, tick=1.0)

    events = []
    for shipment, handle in enumerate(drivers, start=1):
        positions = [(shipment + i * 1.5, i * 0.5) for i in range(1, 4)]
        # Driver 1 is delivering; drivers 2 and 3 stay available.
        status = "en-route" if shipment == 1 else "idle"
        events.append(engine.run_flow(
            handle, fleet.driver_rounds(shipment=shipment,
                                        positions=positions,
                                        status=status)))
    system.run(until=30)

    print("Driver updates:")
    for record in engine.records:
        print(f"  {record.client_name:26s} {record.flow_name} -> "
              f"{'OK' if record.ok else record.error} "
              f"({record.requests} updates, {record.latency:.2f}s)")

    handoffs = sum(h.attachment.stats.get("handoffs") for h in drivers)
    print(f"Cell handoffs during the run: {handoffs}")

    dispatcher = system.add_station("Toshiba E740",
                                    position=Position(20.0, 0.0))
    done = engine.run_flow(dispatcher, fleet.dispatcher_flow(pickup=(5, 5)))
    system.run(until=system.sim.now + 60)
    record = done.value
    print(f"Dispatcher: {'OK' if record.ok else record.error} "
          f"in {record.latency:.2f}s")

    rows = execute(system.host.db_server.database,
                   "SELECT * FROM inv_shipments ORDER BY shipment_id").rows
    print("Final fleet state (host database):")
    for row in rows:
        print(f"  shipment {row['shipment_id']}: {row['driver']:6s} "
              f"{row['status']:10s} at ({row['x']:.1f}, {row['y']:.1f})")


if __name__ == "__main__":
    main()
