"""A mobile storefront under load: devices x middleware comparison.

Run:  python examples/mobile_shop.py

Five customers on the five Table 2 devices shop concurrently, first
over WAP/GPRS, then over i-mode/802.11b — the same application code on
both stacks (the paper's program/data-independence requirement).  Prints
per-device latencies and the middleware comparison.
"""

from repro.apps import CommerceApp, EntertainmentApp
from repro.core import MCSystemBuilder, TransactionEngine
from repro.devices import TABLE2_DEVICES
from repro.sim import StatSummary


def run_stack(middleware: str, bearer: tuple[str, str]) -> dict:
    system = MCSystemBuilder(middleware=middleware, bearer=bearer).build()
    shop = CommerceApp()
    media = EntertainmentApp()
    system.mount_application(shop)
    system.mount_application(media)

    engine = TransactionEngine(system)
    handles = {}
    for index, device in enumerate(sorted(TABLE2_DEVICES)):
        account = f"user{index}"
        system.host.payment.open_account(account, 500_000)
        handles[device] = (system.add_station(device), account)

    events = []
    for device, (handle, account) in handles.items():
        events.append(engine.run_flow(
            handle, shop.browse_and_buy(item_id=1, account=account,
                                        user=account)))
        events.append(engine.run_flow(
            handle, media.buy_and_download(media_id=1, account=account)))
    system.run(until=600)

    per_device: dict[str, list[float]] = {}
    for record in engine.successful:
        per_device.setdefault(record.client_name, []).append(record.latency)
    return {
        "success_rate": engine.success_rate(),
        "per_device": per_device,
        "latency": StatSummary.of(engine.latencies()),
        "orders": len(engine.successful),
    }


def main() -> None:
    stacks = [
        ("WAP", ("cellular", "GPRS")),
        ("i-mode", ("wlan", "802.11b")),
    ]
    results = {}
    for middleware, bearer in stacks:
        label = f"{middleware} over {bearer[1]}"
        print(f"=== {label} ===")
        outcome = run_stack(middleware, bearer)
        results[label] = outcome
        print(f"  success rate: {outcome['success_rate'] * 100:.0f}%  "
              f"({outcome['orders']} transactions)")
        for device, latencies in sorted(outcome["per_device"].items()):
            mean = sum(latencies) / len(latencies)
            print(f"  {device:28s} mean latency {mean:7.3f}s")
        stats = outcome["latency"]
        print(f"  overall: mean {stats.mean:.3f}s  p95 {stats.p95:.3f}s")
        print()

    wap = results["WAP over GPRS"]["latency"].mean
    imode = results["i-mode over 802.11b"]["latency"].mean
    print(f"Same shop, same flows: WAP/GPRS mean {wap:.3f}s vs "
          f"i-mode/802.11b mean {imode:.3f}s")
    print("(the bearer dominates; the application code never changed)")


if __name__ == "__main__":
    main()
