"""Ablation — end-to-end transaction latency across every bearer.

The paper's summary: "1G systems ... will not play a significant role
in mobile commerce"; 2G/2.5G carry it with "much lower bandwidth (less
than 1 Mbps)"; "3G systems with quality-of-service capability will
dominate".  This benchmark runs the *same* purchase on every Table 5
cellular standard and two Table 4 WLAN standards and reports the
end-to-end latency series — the usability curve behind those claims.
"""

import pytest

from repro.apps import CommerceApp
from repro.core import MCSystemBuilder, TransactionEngine
from repro.wireless import DataNotSupportedError

from helpers import emit, emit_table, run_transaction

BEARERS = [
    ("cellular", "AMPS"),
    ("cellular", "GSM"),
    ("cellular", "CDMA"),
    ("cellular", "GPRS"),
    ("cellular", "EDGE"),
    ("cellular", "WCDMA"),
    ("wlan", "802.11b"),
    ("wlan", "802.11g"),
]


def measure_bearer(bearer) -> dict:
    system = MCSystemBuilder(middleware="WAP", bearer=bearer).build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 100_000)
    try:
        handle = system.add_station("Compaq iPAQ H3870")
    except DataNotSupportedError as exc:
        return {"ok": False, "reason": str(exc)}
    engine = TransactionEngine(system)
    record = run_transaction(system, engine, handle,
                             shop.browse_and_buy(account="ann"),
                             horizon=3_000)
    return {"ok": record.ok, "latency": record.latency,
            "bytes": record.bytes_received, "error": record.error}


def measure_all():
    return {name: measure_bearer((kind, name)) for kind, name in BEARERS}


def test_ablation_bearers(benchmark):
    measured = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    rows = []
    for (kind, name) in BEARERS:
        data = measured[name]
        if not data["ok"] and "reason" in data:
            rows.append([name, kind, "unusable", "no data service"])
            continue
        rows.append([
            name, kind,
            f"{data['latency']:.2f} s" if data["ok"] else "FAILED",
            f"{data['bytes']} B",
        ])
    emit_table(
        "Bearer sweep - the same WAP purchase on every bearer "
        "(3-page browse-and-buy)",
        ["Bearer", "Kind", "Transaction latency", "Bytes delivered"],
        rows,
    )

    # 1G cannot participate at all.
    assert not measured["AMPS"]["ok"]
    # Everything 2G+ completes, but latency falls monotonically with
    # generation: GSM > CDMA > GPRS > EDGE > WCDMA > WLAN.
    order = ["GSM", "CDMA", "GPRS", "EDGE", "WCDMA", "802.11b"]
    latencies = [measured[n]["latency"] for n in order]
    assert all(measured[n]["ok"] for n in order)
    assert latencies == sorted(latencies, reverse=True), latencies
    # The paper-era pain is visible: even a tiny 3-page purchase is
    # several times slower on 2G circuit data than on 3G, and 3G/WLAN
    # are interactive (<1 s).
    assert measured["GSM"]["latency"] > 3 * measured["WCDMA"]["latency"]
    assert measured["WCDMA"]["latency"] < 1.0
