"""Table 4 — Major WLAN standards.

Reproduces the paper's WLAN comparison by *measuring* each standard on
the channel model: a station associated to an AP runs a TCP download
at 5 m to measure achievable goodput (vs the rated max), the model's
maximum usable range is searched (vs the paper's typical-range column),
and a distance sweep shows the rate ladder degrading to zero — the
"figure" behind the table.
"""

import pytest

from repro.net import IPAddress, Network, Subnet, TCPStack
from repro.sim import Simulator
from repro.wireless import (
    AccessPoint,
    ChannelModel,
    Mobile,
    Position,
    WLAN_STANDARDS,
    wlan_standard,
)

from helpers import emit, emit_table

DOWNLOAD_BYTES = {
    "Bluetooth": 150_000,
    "802.11b": 800_000,
    "802.11a": 2_000_000,
    "HiperLAN2": 2_000_000,
    "802.11g": 2_000_000,
}


def goodput_at(standard_name: str, distance: float, size: int) -> float:
    """TCP goodput (bps) station<->server at the given AP distance."""
    sim = Simulator()
    net = Network(sim)
    server = net.add_node("server")
    ap_router = net.add_node("ap", forwarding=True)
    net.connect(server, ap_router, Subnet.parse("10.0.0.0/24"),
                bandwidth_bps=1_000_000_000, delay=0.000_5)
    channel = ChannelModel()
    ap = AccessPoint(ap_router, Position(0, 0),
                     wlan_standard(standard_name), channel,
                     wireless_subnet=Subnet.parse("10.0.1.0/24"))
    net.build_routes()
    station = net.add_node("station")
    station.assign_address(IPAddress.parse("10.0.1.50"))
    mobile = Mobile(Position(distance, 0))
    try:
        ap.associate(station, mobile)
    except ConnectionError:
        return 0.0

    tcp_srv = TCPStack(server)
    tcp_sta = TCPStack(station)
    listener = tcp_srv.listen(80)
    received = bytearray()
    finish = {}

    def srv(env):
        conn = yield listener.accept()
        conn.send(b"B" * size)

    def sta(env):
        conn = tcp_sta.connect(server.primary_address, 80)
        yield conn.established_event
        start = env.now
        while len(received) < size:
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)
        finish["goodput"] = len(received) * 8 / (env.now - start)

    sim.spawn(srv(sim))
    sim.spawn(sta(sim))
    sim.run(until=300)
    return finish.get("goodput", 0.0)


def measure_all() -> dict:
    channel = ChannelModel()
    measured = {}
    for name, std in WLAN_STANDARDS.items():
        measured[name] = {
            "std": std,
            "goodput_5m": goodput_at(name, 5.0, DOWNLOAD_BYTES[name]),
            "range_m": channel.max_range_m(std),
        }
    return measured


def test_table4_wlan(benchmark):
    measured = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    rows = []
    for name, data in measured.items():
        std = data["std"]
        low, high = std.typical_range_m
        rows.append([
            name,
            f"{std.max_rate_bps / 1e6:.0f}",
            f"{data['goodput_5m'] / 1e6:.1f}",
            f"{low:.0f} - {high:.0f}",
            f"{data['range_m']:.0f}",
            f"{std.modulation} / {std.band_ghz}",
        ])
    emit_table(
        "Table 4 - Major WLAN standards (paper columns + measured model)",
        ["Standard", "Rated Mbps", "Measured Mbps @5m",
         "Paper range (m)", "Measured range (m)",
         "Modulation / Band (GHz)"],
        rows,
    )

    # The figure behind the table: the 802.11b rate ladder vs distance.
    channel = ChannelModel()
    std = wlan_standard("802.11b")
    sweep_rows = []
    for distance in (2, 25, 60, 80, 95, 105, 150):
        budget = channel.budget(Position(0, 0), Position(distance, 0), std)
        sweep_rows.append([
            f"{distance}",
            f"{budget.snr_db:.1f}",
            f"{budget.rate_bps / 1e6:.1f}",
            f"{budget.success_probability:.2f}",
        ])
    emit_table("802.11b rate vs distance (channel-model sweep)",
               ["Distance (m)", "SNR (dB)", "PHY rate (Mbps)",
                "Frame success p"], sweep_rows)

    # Shape checks against the paper.
    for name, data in measured.items():
        std = data["std"]
        low, high = std.typical_range_m
        assert low <= data["range_m"] <= high * 1.1, name
        # TCP goodput lands below the PHY rate but within 2x of it.
        assert data["goodput_5m"] <= std.max_rate_bps
        assert data["goodput_5m"] >= std.max_rate_bps * 0.3, name

    g = {n: d["goodput_5m"] for n, d in measured.items()}
    r = {n: d["range_m"] for n, d in measured.items()}
    # Who wins on rate: OFDM trio >> 802.11b >> Bluetooth.
    assert min(g["802.11a"], g["802.11g"], g["HiperLAN2"]) > 2 * g["802.11b"]
    assert g["802.11b"] > 3 * g["Bluetooth"]
    # Who wins on range: HiperLAN2 > 802.11g > 802.11b ~ 802.11a > Bluetooth.
    assert r["HiperLAN2"] > r["802.11g"] > r["802.11b"] > r["Bluetooth"]
