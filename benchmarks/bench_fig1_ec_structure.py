"""Figure 1 — An e-commerce system structure.

Builds the four-component EC system with the library's composition
layer, validates the topology against the figure (components, edges,
users -> client computers -> wired networks -> host computers flow),
renders the structure, and runs a desktop purchase through it to show
the data/control-flow edges carry real traffic.
"""

import pytest

from repro.apps import CommerceApp
from repro.core import ECSystemBuilder, TransactionEngine, render_structure
from repro.core.model import EC_FLOW_CHAIN
from repro.core.render import render_flow_chain

from helpers import emit, run_transaction


def build_and_run():
    system = ECSystemBuilder().build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 100_000)
    client = system.add_client("desktop-0")
    engine = TransactionEngine(system)
    record = run_transaction(system, engine, client,
                             shop.browse_and_buy(account="ann"))
    return system, record


def test_fig1_ec_structure(benchmark):
    system, record = benchmark.pedantic(build_and_run, rounds=1,
                                        iterations=1)
    report = system.model.validate_ec()

    emit("")
    emit(render_structure(system.model,
                          title="Figure 1 - An EC system structure "
                                "(as built)"))
    emit("")
    emit("User request path: "
         + render_flow_chain(system.model, EC_FLOW_CHAIN))
    emit(f"Validation against Figure 1: "
         f"{'OK' if report.valid else report.violations}")
    emit(f"Desktop purchase through the structure: "
         f"{'OK' if record.ok else record.error} "
         f"({record.requests} requests, {record.latency:.3f}s)")
    emit("")

    assert report.valid, report.violations
    assert record.ok, record.error
    # Figure 1 has exactly four top-level components; no wireless parts.
    from repro.core import ComponentKind
    assert not system.model.has_kind(ComponentKind.WIRELESS_NETWORKS)
    assert not system.model.has_kind(ComponentKind.MOBILE_MIDDLEWARE)
    assert not system.model.has_kind(ComponentKind.MOBILE_STATIONS)
    assert system.model.has_kind(ComponentKind.CLIENT_COMPUTERS)
    # Host internals from the figure: web servers, database servers,
    # application programs, databases behind them.
    assert system.model.has_kind(ComponentKind.WEB_SERVERS)
    assert system.model.has_kind(ComponentKind.DATABASE_SERVERS)
    assert system.model.has_kind(ComponentKind.APPLICATION_PROGRAMS)
