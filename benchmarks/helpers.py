"""Shared plumbing for the table/figure benchmarks.

Every benchmark prints the paper's rows next to the values measured
from the simulated system (bypassing pytest capture so the reproduction
lands in ``bench_output.txt``), and wraps a representative kernel in
pytest-benchmark for timing.
"""

from __future__ import annotations

__all__ = ["emit", "emit_table", "run_transaction", "REPRODUCTION_OUTPUT"]

# Accumulated reproduction tables; benchmarks/conftest.py prints these
# in the terminal summary so they survive pytest's output capture and
# land in bench_output.txt.
REPRODUCTION_OUTPUT: list[str] = []


def emit(*lines: str) -> None:
    """Queue reproduction output for the end-of-run summary."""
    REPRODUCTION_OUTPUT.extend(lines)


def emit_table(title: str, headers: list[str], rows: list[list],
               widths: list[int] | None = None) -> None:
    """Print an aligned table."""
    if widths is None:
        widths = [
            max(len(str(headers[i])),
                *(len(str(row[i])) for row in rows)) if rows
            else len(str(headers[i]))
            for i in range(len(headers))
        ]
    emit("")
    emit(title)
    emit("-" * len(title))
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    emit(header_line)
    emit("  ".join("-" * w for w in widths))
    for row in rows:
        emit("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    emit("")


def run_transaction(system, engine, handle, flow, horizon: float = 600.0):
    """Run one flow to completion and return its TransactionRecord."""
    done = engine.run_flow(handle, flow)
    system.run(until=system.sim.now + horizon)
    assert done.triggered, "transaction did not finish within the horizon"
    return done.value
