"""Robustness ablation — resilience policies under deterministic chaos.

The paper's transaction path (station -> bearer -> middleware gateway ->
web server -> DB/payment) is subjected to the ``gateway-outage`` chaos
scenario at increasing intensity, once with every resilience policy
disabled (the historical system) and once with the full stack enabled:
per-request timeouts, seeded-backoff retries, circuit breakers in the
gateway, web-server load shedding, and standby-gateway / direct-HTML
failover.  Every run is a pure function of its seed, so the table below
reproduces byte-for-byte.
"""

from repro.faults import run_chaos

from helpers import emit, emit_table

SEED = 7
INTENSITIES = [0.25, 0.5, 0.75]
SCENARIO = "gateway-outage"
COMMON = dict(scenario=SCENARIO, seed=SEED, stations=3,
              transactions_per_station=8, horizon=240.0)


def run_matrix():
    rows = []
    for intensity in INTENSITIES:
        on = run_chaos(intensity=intensity, policies=True, **COMMON)
        off = run_chaos(intensity=intensity, policies=False, **COMMON)
        rows.append({"intensity": intensity, "on": on, "off": off})
    return rows


def test_chaos_resilience(benchmark):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    table = []
    for row in rows:
        on, off = row["on"], row["off"]
        table.append([
            f"{row['intensity']:.2f}",
            f"{off['success_rate']:.3f}",
            f"{on['success_rate']:.3f}",
            f"{on['resilience']['failovers']}",
            f"{on['retries']}",
            f"{off['latency']['p95']:.3f}s",
            f"{on['latency']['p95']:.3f}s",
        ])
    emit_table(
        f"Robustness ablation - '{SCENARIO}' chaos scenario, seed {SEED}, "
        f"{COMMON['stations']}x{COMMON['transactions_per_station']} "
        "transactions",
        ["Intensity", "Success (off)", "Success (on)", "Failovers",
         "Retries", "p95 (off)", "p95 (on)"],
        table,
    )
    worst_off = min(r["off"]["success_rate"] for r in rows)
    emit(f"Policies off: worst-case success {worst_off:.3f}; "
         "policies on hold >= 0.9 at every intensity.")
    emit("")

    # Acceptance: at moderate intensity the policied system succeeds at
    # >= 0.9 and strictly beats the unprotected baseline.
    moderate = next(r for r in rows if r["intensity"] == 0.5)
    assert moderate["on"]["success_rate"] >= 0.9
    assert moderate["on"]["success_rate"] > moderate["off"]["success_rate"]
    # The protection comes from the mechanisms under test.
    assert moderate["on"]["resilience"]["failovers"] >= 1
    # The unprotected run actually suffered (the chaos is real).
    assert moderate["off"]["errors"]
    # Policies never hurt: at every intensity ON >= OFF.
    for row in rows:
        assert row["on"]["success_rate"] >= row["off"]["success_rate"]
