"""Table 1 — Major mobile commerce applications.

Reproduces the paper's Table 1 by *running* every application category
end-to-end on one mobile commerce system (WCDMA bearer, WAP middleware)
and reporting, per row: the category, the major application actually
demonstrated, the clients column from the paper, and the measured
transaction outcome.
"""

import pytest

from repro.apps import ALL_CATEGORIES
from repro.core import MCSystemBuilder, TransactionEngine
from repro.obs import format_breakdown, install_tracer, layer_breakdown

from helpers import emit, emit_table, run_transaction

# Paper's "Major Applications" and "Clients" columns, keyed by category.
PAPER_ROWS = {
    "commerce": ("Mobile transactions and payments", "Businesses"),
    "education": ("Mobile classrooms and labs",
                  "Schools and training centers"),
    "erp": ("Resource management", "All companies"),
    "entertainment": ("Music/video/game downloads",
                      "Entertainment industry"),
    "healthcare": ("Patient record accessing",
                   "Hospitals and nursing homes"),
    "inventory": ("Product tracking and dispatching",
                  "Delivery services and transportation"),
    "traffic": ("Global positioning, directions, and traffic advisories",
                "Transportation and auto industries"),
    "travel": ("Travel management", "Travel industry and ticket sales"),
}


def build_world():
    system = MCSystemBuilder(middleware="WAP",
                             bearer=("cellular", "WCDMA")).build()
    apps = {}
    for name, cls in ALL_CATEGORIES.items():
        app = cls()
        system.mount_application(app)
        apps[name] = app
    system.host.payment.open_account("ann", 1_000_000)
    handle = system.add_station("Compaq iPAQ H3870")
    return system, apps, handle


def flow_for(apps, category):
    return {
        "commerce": lambda: apps["commerce"].browse_and_buy(
            account="ann", user="ann"),
        "education": lambda: apps["education"].attend_class(),
        "erp": lambda: apps["erp"].manage_resources(),
        "entertainment": lambda: apps["entertainment"].buy_and_download(
            account="ann"),
        "healthcare": lambda: apps["healthcare"].rounds(),
        "inventory": lambda: apps["inventory"].driver_rounds(),
        "traffic": lambda: apps["traffic"].navigate(),
        "travel": lambda: apps["travel"].book_trip(),
    }[category]()


def run_all_categories():
    system, apps, handle = build_world()
    tracer = install_tracer(system.sim)
    engine = TransactionEngine(system)
    outcomes = {}
    for category in PAPER_ROWS:
        record = run_transaction(system, engine, handle,
                                 flow_for(apps, category))
        outcomes[category] = record
    return outcomes, tracer


def component_latency(tracer, record):
    """Per-component breakdown cell for one transaction, or ``-``."""
    if record.trace_id is None:
        return "-"
    try:
        breakdown = layer_breakdown(tracer, trace_id=record.trace_id)
    except ValueError:
        return "-"
    return format_breakdown(breakdown)


def test_table1_applications(benchmark):
    outcomes, tracer = benchmark.pedantic(run_all_categories, rounds=1,
                                          iterations=1)
    rows = []
    for category, (major, clients) in PAPER_ROWS.items():
        record = outcomes[category]
        status = "OK" if record.ok else f"FAILED: {record.error[:30]}"
        rows.append([
            category, major[:46], clients[:34],
            f"{record.requests} req", f"{record.latency:.2f}s",
            component_latency(tracer, record), status,
        ])
    emit_table(
        "Table 1 - Major mobile commerce applications "
        "(paper columns + measured run)",
        ["Category", "Major application (paper)", "Clients (paper)",
         "Requests", "Latency", "Per-component latency", "Outcome"],
        rows,
    )
    failed = [c for c, r in outcomes.items() if not r.ok]
    assert not failed, f"categories failed end-to-end: {failed}"
    assert set(outcomes) == set(ALL_CATEGORIES)
