"""Host computers (§7): web-server and database-server microbenchmarks.

The paper credits Apache with "functionality and speed" and stresses
the database server's role in every transaction.  This benchmark
measures the host tier itself:

* web-server request throughput under concurrent wired clients;
* database query latency with an index vs a full scan (the planner's
  access-path choice, visible end-to-end through the DB server);
* CGI program invocation overhead vs static pages.
"""

import pytest

from repro.db import DatabaseClient, DatabaseServer, execute
from repro.net import Network, Subnet
from repro.sim import Simulator, StatSummary
from repro.web import HTTPClient, HTTPResponse, WebServer

from helpers import emit, emit_table


def build_host_world(n_clients=4):
    sim = Simulator()
    net = Network(sim)
    host = net.add_node("web-host")
    db_host = net.add_node("db-host")
    net.connect(host, db_host, Subnet.parse("10.1.1.0/24"),
                bandwidth_bps=1_000_000_000, delay=0.000_2)
    clients = []
    for index in range(n_clients):
        node = net.add_node(f"client{index}")
        net.connect(host, node, Subnet.parse("10.0.0.0/24"),
                    bandwidth_bps=100_000_000, delay=0.001)
        clients.append(node)
    net.build_routes()

    db_server = DatabaseServer(db_host)
    execute(db_server.database,
            "CREATE TABLE catalog (id INTEGER PRIMARY KEY, name TEXT, "
            "category TEXT)")
    for i in range(500):
        execute(db_server.database,
                "INSERT INTO catalog (id, name, category) VALUES (?, ?, ?)",
                (i, f"item-{i}", f"cat-{i % 7}"))

    db_client = DatabaseClient(host, db_host.primary_address)
    server = WebServer(host, database=db_client)
    server.add_page("/static", "<html>static page</html>")

    def by_id(ctx):
        reply = yield ctx.database.query(
            "SELECT * FROM catalog WHERE id = ?",
            (int(ctx.param("id", "0")),))
        return HTTPResponse.ok(str(reply["rows"]), "text/plain")

    def by_category(ctx):
        reply = yield ctx.database.query(
            "SELECT * FROM catalog WHERE category = ?",
            (ctx.param("cat", "cat-0"),))
        return HTTPResponse.ok(str(len(reply["rows"])), "text/plain")

    server.mount("/db/by-id", by_id)
    server.mount("/db/by-category", by_category)

    def connect(env):
        yield db_client.connect()

    sim.spawn(connect(sim))
    return sim, net, host, server, db_server, clients


def measure():
    sim, net, host, server, db_server, clients = build_host_world()

    results = {"static": [], "by_id": [], "by_cat": []}

    def worker(env, node, path, bucket, count):
        client = HTTPClient(node)
        for _ in range(count):
            start = env.now
            response = yield client.get(host.primary_address, path)
            assert response is not None and response.status == 200
            results[bucket].append(env.now - start)

    # Throughput: all clients hammer the static page concurrently.
    for node in clients:
        sim.spawn(worker(sim, node, "/static", "static", 50))
    sim.run(until=600)
    span = max(sum(results["static"][i::4]) for i in range(4))
    throughput = len(results["static"]) / span if span else 0.0

    # DB access paths, sequential from one client.
    sim2, net2, host2, server2, db2, clients2 = build_host_world(
        n_clients=1)
    local = {"static": [], "by_id": [], "by_cat": []}

    def seq(env):
        client = HTTPClient(clients2[0])
        for i in range(30):
            start = env.now
            response = yield client.get(host2.primary_address,
                                        f"/db/by-id?id={i * 7}")
            assert response.status == 200
            local["by_id"].append(env.now - start)
        for i in range(30):
            start = env.now
            response = yield client.get(host2.primary_address,
                                        f"/db/by-category?cat=cat-{i % 7}")
            assert response.status == 200
            local["by_cat"].append(env.now - start)
        for _ in range(30):
            start = env.now
            response = yield client.get(host2.primary_address, "/static")
            assert response.status == 200
            local["static"].append(env.now - start)

    sim2.spawn(seq(sim2))
    sim2.run(until=600)
    return {
        "throughput_rps": throughput,
        "static": StatSummary.of(local["static"]),
        "by_id": StatSummary.of(local["by_id"]),
        "by_cat": StatSummary.of(local["by_cat"]),
        "access_log_entries": len(server.access_log),
    }


def test_host_computers(benchmark):
    measured = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit_table(
        "Host computers (S7) - web + database tier microbenchmarks",
        ["Metric", "Value"],
        [
            ["Web server throughput (4 concurrent clients, static)",
             f"{measured['throughput_rps']:.0f} req/s"],
            ["Static page latency (p50)",
             f"{measured['static'].p50 * 1000:.2f} ms"],
            ["DB query via PK index (p50, end-to-end)",
             f"{measured['by_id'].p50 * 1000:.2f} ms"],
            ["DB query via full scan (p50, end-to-end)",
             f"{measured['by_cat'].p50 * 1000:.2f} ms"],
            ["Access-log entries recorded",
             str(measured["access_log_entries"])],
        ],
    )
    # Static beats CGI+DB; the indexed lookup beats... both paths pay
    # mostly the same wire cost here, so assert the cheap ordering only.
    assert measured["static"].p50 < measured["by_id"].p50
    assert measured["throughput_rps"] > 100
    assert measured["access_log_entries"] == 200
