"""Ablation (paper §5.2) — Mobile IP.

"The Mobile IP defines enhancements that permit IP nodes ... to
seamlessly 'roam' among IP subnetworks ... It supports transparency
above the IP layer, including the maintenance of active TCP
connections and UDP port bindings."

The benchmark quantifies both claims: a correspondent pings a mobile
that roams across three subnets, with and without Mobile IP
(delivery rate); and a TCP download runs across a mid-stream move
(connection survival + completion time).
"""

import pytest

from repro.net import (
    IPAddress,
    Network,
    Subnet,
    TCPStack,
    install_echo_responder,
    ping,
)
from repro.net.mobile import ForeignAgent, HomeAgent, MobileIPClient, \
    RoamingManager
from repro.sim import Simulator

from helpers import emit, emit_table

PAYLOAD = 80_000


def build_world():
    sim = Simulator()
    net = Network(sim)
    core = net.add_node("core", forwarding=True)
    routers = {}
    for index, name in enumerate(["home", "visit1", "visit2"]):
        router = net.add_node(f"{name}-router", forwarding=True)
        net.connect(core, router, Subnet.parse(f"10.{index + 1}.0.0/24"),
                    delay=0.002)
        routers[name] = router
    correspondent = net.add_node("correspondent")
    net.connect(core, correspondent, Subnet.parse("10.9.0.0/24"),
                delay=0.002)

    mobile = net.add_node("mobile")
    home_address = IPAddress.parse("10.1.0.100")
    roaming = RoamingManager(net, mobile, home_address)
    roaming.attach(routers["home"])
    net.build_routes()
    return sim, net, routers, correspondent, mobile, home_address, roaming


def ping_while_roaming(use_mobile_ip: bool) -> dict:
    """Continuous pings across two moves; returns delivery stats."""
    (sim, net, routers, correspondent, mobile,
     home_address, roaming) = build_world()
    install_echo_responder(mobile)
    if use_mobile_ip:
        HomeAgent(routers["home"])
        agents = {name: ForeignAgent(routers[name])
                  for name in ("visit1", "visit2")}
        client = MobileIPClient(mobile, home_address,
                                routers["home"].primary_address)
    outcomes = []

    def pinger(env):
        for _ in range(30):
            reply = yield ping(sim, correspondent, home_address,
                               timeout=1.0)
            outcomes.append(reply is not None)
            yield env.timeout(0.5)

    def roam(env):
        for name in ("visit1", "visit2"):
            yield env.timeout(5.0)
            roaming.attach(routers[name])
            if use_mobile_ip:
                yield client.register_via(agents[name].care_of_address)

    sim.spawn(pinger(sim))
    sim.spawn(roam(sim))
    sim.run(until=120)
    return {"sent": len(outcomes), "delivered": sum(outcomes)}


def tcp_across_move(use_mobile_ip: bool) -> dict:
    (sim, net, routers, correspondent, mobile,
     home_address, roaming) = build_world()
    if use_mobile_ip:
        HomeAgent(routers["home"])
        fa = ForeignAgent(routers["visit1"])
        client = MobileIPClient(mobile, home_address,
                                routers["home"].primary_address)
    tcp_c = TCPStack(correspondent)
    tcp_m = TCPStack(mobile, mss=512)
    listener = tcp_m.listen(80)
    received = bytearray()
    out = {}

    def mobile_side(env):
        conn = yield listener.accept()
        while len(received) < PAYLOAD:
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)
        out["done_at"] = env.now

    def fixed_side(env):
        conn = tcp_c.connect(home_address, 80, mss=512)
        yield conn.established_event
        conn.send(b"M" * PAYLOAD)

    def roam(env):
        yield env.timeout(0.2)
        roaming.attach(routers["visit1"])
        if use_mobile_ip:
            yield client.register_via(fa.care_of_address)

    sim.spawn(mobile_side(sim))
    sim.spawn(fixed_side(sim))
    sim.spawn(roam(sim))
    sim.run(until=300)
    return {"received": len(received), "done_at": out.get("done_at")}


def run_all():
    return {
        "ping_with": ping_while_roaming(True),
        "ping_without": ping_while_roaming(False),
        "tcp_with": tcp_across_move(True),
        "tcp_without": tcp_across_move(False),
    }


def test_ablation_mobileip(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    pw, po = results["ping_with"], results["ping_without"]
    tw, to = results["tcp_with"], results["tcp_without"]
    emit_table(
        "S5.2 ablation - Mobile IP vs no mobility support "
        "(mobile roams home -> visited1 -> visited2)",
        ["Scenario", "Without Mobile IP", "With Mobile IP"],
        [
            ["Echo delivery while roaming",
             f"{po['delivered']}/{po['sent']}",
             f"{pw['delivered']}/{pw['sent']}"],
            [f"TCP download ({PAYLOAD} B) across a move",
             (f"{to['received']} B, stalled"
              if to["done_at"] is None else f"done {to['done_at']:.2f}s"),
             f"done {tw['done_at']:.2f}s" if tw["done_at"] else "stalled"],
        ],
    )

    # Transparency claim: with Mobile IP, near-total delivery and the
    # TCP connection survives; without it, the mobile goes dark.
    assert pw["delivered"] >= 0.9 * pw["sent"]
    assert po["delivered"] < 0.5 * po["sent"]
    assert tw["done_at"] is not None
    assert tw["received"] == PAYLOAD
    assert to["done_at"] is None  # never completes without Mobile IP
