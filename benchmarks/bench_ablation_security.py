"""Ablation (paper §8) — mobile security and payment.

"Security issues (including payment) include data reliability,
integrity, confidentiality, and authentication."  The benchmark
measures what the WTLS-style layer costs and what it buys: the same
payment exchange runs over plaintext TCP and over a SecureChannel
(handshake + per-record overhead measured), then active attacks are
replayed against both — eavesdropping, tampering, replay — and the
detection outcomes tabulated.
"""

import pytest

from repro.net import Network, Subnet, TCPStack
from repro.security import (
    PaymentError,
    PaymentOrder,
    PaymentProcessor,
    SecureChannel,
    SecurityError,
)
from repro.sim import SeedBank, Simulator

from helpers import emit, emit_table

EXCHANGES = 10
ORDER_TEXT = b"PAY account=ann merchant=acme amount=4999 nonce=%d"


def build_pair():
    sim = Simulator()
    net = Network(sim)
    client = net.add_node("mobile")
    server = net.add_node("payment-host")
    net.connect(client, server, Subnet.parse("10.0.0.0/24"),
                bandwidth_bps=2_000_000, delay=0.020)
    net.build_routes()
    return sim, net, client, server


def plaintext_exchange() -> dict:
    sim, net, client_node, server_node = build_pair()
    tcp_c, tcp_s = TCPStack(client_node), TCPStack(server_node)
    listener = tcp_s.listen(4000)
    sniffed = bytearray()

    def sniffer(packet, iface):
        data = getattr(packet.payload, "data", b"")
        if data:
            sniffed.extend(data)
        return False

    server_node.rx_taps.append(sniffer)
    out = {}

    def server(env):
        conn = yield listener.accept()
        for _ in range(EXCHANGES):
            msg = yield conn.recv()
            if msg == b"":
                return
            conn.send(b"OK")

    def client(env):
        conn = tcp_c.connect(server_node.primary_address, 4000)
        yield conn.established_event
        start = env.now
        for i in range(EXCHANGES):
            conn.send(ORDER_TEXT % i)
            _ = yield conn.recv()
        out["elapsed"] = env.now - start

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=120)
    out["plaintext_visible"] = b"merchant=acme" in bytes(sniffed)
    return out


def secure_exchange() -> dict:
    sim, net, client_node, server_node = build_pair()
    tcp_c, tcp_s = TCPStack(client_node), TCPStack(server_node)
    listener = tcp_s.listen(4000)
    bank = SeedBank(33)
    sniffed = bytearray()

    def sniffer(packet, iface):
        data = getattr(packet.payload, "data", b"")
        if data:
            sniffed.extend(data)
        return False

    server_node.rx_taps.append(sniffer)
    out = {}

    def server(env):
        conn = yield listener.accept()
        channel = SecureChannel(conn, bank.stream("s"),
                                psk=b"subscriber-key")
        yield channel.handshake_server()
        for _ in range(EXCHANGES):
            msg = yield channel.recv()
            if msg == b"":
                return
            channel.send(b"OK")

    def client(env):
        conn = tcp_c.connect(server_node.primary_address, 4000)
        yield conn.established_event
        start = env.now
        channel = SecureChannel(conn, bank.stream("c"),
                                psk=b"subscriber-key")
        yield channel.handshake_client()
        out["handshake"] = env.now - start
        for i in range(EXCHANGES):
            channel.send(ORDER_TEXT % i)
            _ = yield channel.recv()
        out["elapsed"] = env.now - start

    sim.spawn(server(sim))
    sim.spawn(client(sim))
    sim.run(until=120)
    out["plaintext_visible"] = b"merchant=acme" in bytes(sniffed)
    return out


def attack_outcomes() -> dict:
    """Application-layer attacks against the payment processor."""
    sim = Simulator()
    processor = PaymentProcessor(sim, SeedBank(5).stream("pay"))
    processor.open_account("ann", 100_000)
    key = processor.register_merchant("acme")
    order = PaymentOrder("ann", "acme", 4_999,
                         processor.make_nonce()).signed(key)
    outcomes = {}
    processor.authorize(order)  # legitimate
    try:
        processor.authorize(order)  # replay
        outcomes["replay"] = "ACCEPTED (bad)"
    except PaymentError as exc:
        outcomes["replay"] = f"rejected ({type(exc).__name__})"
    tampered = PaymentOrder("ann", "acme", 1, order.nonce + "x",
                            signature=order.signature)
    try:
        processor.authorize(tampered)
        outcomes["tamper"] = "ACCEPTED (bad)"
    except PaymentError as exc:
        outcomes["tamper"] = f"rejected ({type(exc).__name__})"
    return outcomes


def run_all():
    return {
        "plain": plaintext_exchange(),
        "secure": secure_exchange(),
        "attacks": attack_outcomes(),
    }


def test_ablation_security(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    plain, secure = results["plain"], results["secure"]
    overhead = (secure["elapsed"] - plain["elapsed"]) / plain["elapsed"]

    emit_table(
        f"S8 ablation - {EXCHANGES} payment exchanges, plaintext vs "
        "WTLS-style channel",
        ["Metric", "Plaintext TCP", "SecureChannel"],
        [
            ["Total time",
             f"{plain['elapsed']:.3f}s", f"{secure['elapsed']:.3f}s"],
            ["Handshake cost", "none", f"{secure['handshake']:.3f}s"],
            ["Relative overhead", "-", f"+{overhead * 100:.0f}%"],
            ["Order text visible to sniffer",
             str(plain["plaintext_visible"]),
             str(secure["plaintext_visible"])],
        ],
    )
    attacks = results["attacks"]
    emit("Active attacks against the payment processor:")
    emit(f"  replayed order:  {attacks['replay']}")
    emit(f"  tampered amount: {attacks['tamper']}")
    emit("")

    # Confidentiality: the sniffer reads plaintext only without the layer.
    assert plain["plaintext_visible"] is True
    assert secure["plaintext_visible"] is False
    # The layer costs something (handshake RTT) but is bounded.
    assert secure["elapsed"] > plain["elapsed"]
    assert overhead < 1.0  # less than 2x for a 10-exchange session
    # Integrity and replay protection hold.
    assert attacks["replay"].startswith("rejected")
    assert attacks["tamper"].startswith("rejected")
