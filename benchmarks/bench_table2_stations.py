"""Table 2 — Some major mobile stations.

Reproduces the paper's device table and *measures* each device: the
same reference WML deck is rendered on every Table 2 station under its
CPU/OS model, and a reference compute job is timed.  The paper's spec
columns are printed beside the measured render times; the shape check
is that render time ordering follows (inverse) CPU clock x OS overhead.
"""

import pytest

from repro.devices import (
    Microbrowser,
    OS_PROFILES,
    TABLE2_DEVICES,
    build_station,
)
from repro.net import IPAddress
from repro.sim import Simulator

from helpers import emit, emit_table

REFERENCE_DECK = (b"<wml><card id='c0' title='Catalog'><p>"
                  + b"Special offer on phones and cases today! " * 60
                  + b"</p></card></wml>")
REFERENCE_CYCLES = 2e7  # a typical application task


def measure_device(full_name: str) -> dict:
    sim = Simulator()
    station = build_station(sim, full_name, IPAddress.parse("10.0.0.9"))
    browser = Microbrowser(station)
    result = browser.render(REFERENCE_DECK, "text/vnd.wap.wml")
    sim.run()
    render_seconds = result.value.render_seconds

    before = sim.now
    station.compute(REFERENCE_CYCLES)
    sim.run()
    compute_seconds = sim.now - before
    return {
        "spec": station.spec,
        "render_ms": render_seconds * 1000,
        "compute_ms": compute_seconds * 1000,
        "battery_after": station.battery.level,
    }


def measure_all() -> dict:
    return {name: measure_device(name) for name in TABLE2_DEVICES}


def test_table2_stations(benchmark):
    measured = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    rows = []
    for name, data in measured.items():
        spec = data["spec"]
        rows.append([
            spec.full_name,
            f"{spec.os_name} {spec.os_version}",
            spec.cpu_name[:34],
            f"{spec.ram_mb} MB/{spec.rom_mb} MB",
            f"{data['render_ms']:.1f} ms",
            f"{data['compute_ms']:.1f} ms",
        ])
    emit_table(
        "Table 2 - Some major mobile stations "
        "(paper spec columns + measured device model)",
        ["Vendor & Device", "Operating System", "Processor",
         "RAM/ROM", "Render (deck)", "Compute (20M cyc)"],
        rows,
    )

    # Spec columns match the paper exactly.
    spec = measured["Compaq iPAQ H3870"]["spec"]
    assert (spec.cpu_mhz, spec.ram_mb, spec.rom_mb) == (206, 64, 32)
    spec = measured["Palm i705"]["spec"]
    assert (spec.cpu_mhz, spec.ram_mb, spec.rom_mb) == (33, 8, 4)
    spec = measured["Toshiba E740"]["spec"]
    assert (spec.cpu_mhz, spec.ram_mb, spec.rom_mb) == (400, 64, 32)

    # Shape: measured times order by effective speed (clock / overhead).
    def effective_speed(name):
        data = measured[name]
        profile = OS_PROFILES[data["spec"].os_name]
        return data["spec"].cpu_mhz / profile.cpu_overhead

    by_speed = sorted(measured, key=effective_speed)
    render_times = [measured[n]["render_ms"] for n in by_speed]
    assert render_times == sorted(render_times, reverse=True), (
        "render times should fall as effective CPU speed rises"
    )
    # The 33 MHz Palm i705 is the slowest renderer; the 400 MHz E740
    # the fastest — by an order of magnitude, as the clocks suggest.
    assert measured["Palm i705"]["render_ms"] > \
        8 * measured["Toshiba E740"]["render_ms"]
