"""Table 5 — Major cellular wireless networks.

Reproduces the generation taxonomy and *measures* it: for every
standard, a subscriber attaches (1G refuses data — the paper's point)
and runs a TCP download to measure achieved throughput; the switching
column is demonstrated behaviourally — circuit-switched cells *block*
excess calls while packet-switched cells *degrade* under load.
"""

import pytest

from repro.net import IPAddress, Network, Subnet, TCPStack
from repro.sim import Simulator
from repro.wireless import (
    CELLULAR_STANDARDS,
    CellularNetwork,
    DataNotSupportedError,
    Mobile,
    Position,
    cellular_standard,
)

from helpers import emit, emit_table

DOWNLOAD_BYTES = {
    "GSM": 6_000, "TDMA": 6_000, "CDMA": 8_000,
    "GPRS": 50_000, "EDGE": 150_000,
    "CDMA2000": 400_000, "WCDMA": 400_000,
}


def build_cell_world(standard_name):
    sim = Simulator()
    net = Network(sim)
    core = net.add_node("core", forwarding=True)
    server = net.add_node("server")
    net.connect(core, server, Subnet.parse("10.0.0.0/24"),
                bandwidth_bps=1_000_000_000, delay=0.002)
    cellnet = CellularNetwork(net, core,
                              cellular_standard(standard_name))
    cellnet.add_base_station("bs0", Position(0, 0))
    net.build_routes()
    return sim, net, server, cellnet


def measure_throughput(standard_name: str) -> float:
    """TCP download throughput (bps); 0.0 when data is unsupported."""
    sim, net, server, cellnet = build_cell_world(standard_name)
    sub = net.add_node("phone")
    sub.assign_address(IPAddress.parse("10.200.0.10"))
    try:
        cellnet.attach(sub, Mobile(Position(0, 0)))
    except DataNotSupportedError:
        return 0.0
    size = DOWNLOAD_BYTES[standard_name]
    tcp_srv = TCPStack(server)
    tcp_sub = TCPStack(sub, mss=512)
    listener = tcp_srv.listen(80)
    received = bytearray()
    finish = {}

    def srv(env):
        conn = yield listener.accept()
        conn.send(b"C" * size)

    def cli(env):
        conn = tcp_sub.connect(server.primary_address, 80, mss=512)
        yield conn.established_event
        start = env.now
        while len(received) < size:
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)
        finish["bps"] = len(received) * 8 / (env.now - start)

    sim.spawn(srv(sim))
    sim.spawn(cli(sim))
    sim.run(until=20_000)
    return finish.get("bps", 0.0)


def demonstrate_switching() -> dict:
    """Circuit cells block excess calls; packet cells queue them."""
    # Circuit: a GSM cell with all channels busy refuses the next call.
    sim, net, server, cellnet = build_cell_world("GSM")
    bs = cellnet.base_stations[0]
    results = [bs.place_voice_call(duration=300.0)
               for _ in range(bs.standard.voice_channels_per_cell + 10)]
    sim.run(until=10)
    circuit = {"carried": bs.stats.get("calls_carried"),
               "blocked": bs.stats.get("calls_blocked")}

    # Packet: ten GPRS subscribers all attach; none is refused.
    sim, net, server, cellnet = build_cell_world("GPRS")
    attached = 0
    for index in range(10):
        sub = net.add_node(f"phone{index}")
        sub.assign_address(IPAddress.parse(f"10.200.0.{20 + index}"))
        cellnet.attach(sub, Mobile(Position(0, 0)))
        attached += 1
    packet = {"attached": attached, "refused": 0}
    return {"circuit": circuit, "packet": packet}


def measure_all():
    throughput = {name: measure_throughput(name)
                  for name in CELLULAR_STANDARDS}
    return {"throughput": throughput,
            "switching": demonstrate_switching()}


def test_table5_cellular(benchmark):
    measured = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    throughput = measured["throughput"]

    rows = []
    for name, std in CELLULAR_STANDARDS.items():
        bps = throughput[name]
        rows.append([
            std.generation,
            "Analog voice; digital control" if std.radio == "analog"
            else "Digital",
            f"{std.switching}-switched",
            name,
            f"{std.data_rate_bps / 1000:.1f}" if std.supports_data
            else "voice only",
            f"{bps / 1000:.1f}" if bps else "no data service",
        ])
    emit_table(
        "Table 5 - Major cellular wireless networks "
        "(paper columns + measured)",
        ["Generation", "Radio channels", "Switching", "Standard",
         "Nominal kbps", "Measured kbps"],
        rows,
    )

    switching = measured["switching"]
    emit("Switching technique, demonstrated:")
    emit(f"  circuit (GSM): {switching['circuit']['carried']} calls "
         f"carried, {switching['circuit']['blocked']} blocked "
         "(Erlang-B blocking)")
    emit(f"  packet (GPRS): {switching['packet']['attached']} data "
         f"sessions attached, {switching['packet']['refused']} refused "
         "(always-on, shared capacity)")
    emit("")

    # Shape checks.
    assert throughput["AMPS"] == 0.0 and throughput["TACS"] == 0.0
    assert 0 < throughput["GSM"] <= 9_600
    # Generations order: 3G > 2.5G > 2G.
    assert throughput["WCDMA"] > throughput["EDGE"] > \
        throughput["GPRS"] > throughput["GSM"]
    assert throughput["CDMA2000"] > throughput["EDGE"]
    # The paper: cellular bandwidth "less than 1 Mbps" for 2G/2.5G.
    for name in ("GSM", "TDMA", "CDMA", "GPRS", "EDGE"):
        assert throughput[name] < 1_000_000
    # Circuit blocks; packet does not.
    assert switching["circuit"]["blocked"] == 10
    assert switching["circuit"]["carried"] == 30
    assert switching["packet"]["refused"] == 0
