"""Benchmark-suite plumbing.

Puts this directory on sys.path (so benches share ``helpers``) and
prints every reproduced paper table in the terminal summary, where
pytest's capture cannot swallow it.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_terminal_summary(terminalreporter):
    from helpers import REPRODUCTION_OUTPUT

    if not REPRODUCTION_OUTPUT:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep(
        "=", "reproduced paper tables and figures")
    for line in REPRODUCTION_OUTPUT:
        terminalreporter.write_line(line)
