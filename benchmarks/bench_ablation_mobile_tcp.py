"""Ablation (paper §5.2) — TCP for mobile networks.

The paper surveys three fixes for TCP's poor behaviour over wireless
links: split connection (Yavatkar & Bhagawat [16]), snoop packet
caching (Balakrishnan et al. [1]) and fast retransmission after handoff
(Caceres & Iftode [2]).  This benchmark runs the same fixed-host ->
mobile transfer under (a) wireless loss and (b) a handoff blackout,
for plain Reno and each enhancement, and reports completion time and
sender-visible loss events — the cited papers' qualitative result
(each enhancement beats plain TCP in its target regime) must hold.
"""

import pytest

from repro.net import Network, Subnet, TCPStack
from repro.net.mobile import HandoffNotifier, SnoopAgent, SplitRelay
from repro.sim import SeedBank, Simulator

from helpers import emit, emit_table

PAYLOAD = 60_000
LOSS_RATE = 0.08
SEED = 21


def build(sim, loss=0.0, seed=SEED):
    net = Network(sim)
    fixed = net.add_node("fixed")
    base = net.add_node("base", forwarding=True)
    mobile = net.add_node("mobile")
    net.connect(fixed, base, Subnet.parse("10.0.1.0/24"),
                bandwidth_bps=10_000_000, delay=0.010)
    stream = SeedBank(seed).stream("w") if loss else None
    net.connect(mobile, base, Subnet.parse("10.0.2.0/24"),
                bandwidth_bps=2_000_000, delay=0.004,
                loss_rate=loss, loss_stream=stream)
    net.build_routes()
    return net, fixed, base, mobile


def direct_transfer(sim, fixed, mobile, mss=512):
    """Fixed host sends PAYLOAD straight to the mobile."""
    tcp_f = TCPStack(fixed, mss=mss)
    tcp_m = TCPStack(mobile, mss=mss)
    listener = tcp_m.listen(80)
    received = bytearray()
    out = {"received": received}

    def mobile_side(env):
        conn = yield listener.accept()
        out["mobile_conn"] = conn
        while len(received) < PAYLOAD:
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)
        out["done_at"] = env.now

    def fixed_side(env):
        conn = tcp_f.connect(mobile.primary_address, 80, mss=mss)
        out["fixed_conn"] = conn
        yield conn.established_event
        conn.send(b"P" * PAYLOAD)

    sim.spawn(mobile_side(sim))
    sim.spawn(fixed_side(sim))
    return out


def split_transfer(sim, fixed, base, mobile):
    """Mobile pulls PAYLOAD via an I-TCP relay on the base station."""
    tcp_f = TCPStack(fixed)
    listener = tcp_f.listen(80)
    SplitRelay(base, 8080, fixed.primary_address, 80)
    received = bytearray()
    out = {"received": received}

    def origin(env):
        conn = yield listener.accept()
        out["fixed_conn"] = conn
        _ = yield conn.recv_exactly(1)
        conn.send(b"P" * PAYLOAD)

    def client(env):
        tcp_m = TCPStack(mobile, mss=512)
        conn = tcp_m.connect(base.primary_address, 8080, mss=512)
        yield conn.established_event
        conn.send(b"G")
        while len(received) < PAYLOAD:
            chunk = yield conn.recv()
            if chunk == b"":
                break
            received.extend(chunk)
        out["done_at"] = env.now

    sim.spawn(origin(sim))
    sim.spawn(client(sim))
    return out


def sender_loss_events(conn) -> int:
    return conn.stats.get("fast_retransmits") + conn.stats.get("timeouts")


def run_loss_regime() -> list[list]:
    rows = []
    # Plain Reno.
    sim = Simulator()
    net, fixed, base, mobile = build(sim, loss=LOSS_RATE)
    out = direct_transfer(sim, fixed, mobile)
    sim.run(until=900)
    assert len(out["received"]) == PAYLOAD
    rows.append(["plain TCP (Reno)", f"{out['done_at']:.2f}",
                 sender_loss_events(out["fixed_conn"]),
                 out["fixed_conn"].stats.get("retransmitted_segments")])

    # Snoop.
    sim = Simulator()
    net, fixed, base, mobile = build(sim, loss=LOSS_RATE)
    snoop = SnoopAgent(base, {mobile.primary_address})
    out = direct_transfer(sim, fixed, mobile)
    sim.run(until=900)
    assert len(out["received"]) == PAYLOAD
    rows.append(["snoop [1]", f"{out['done_at']:.2f}",
                 sender_loss_events(out["fixed_conn"]),
                 out["fixed_conn"].stats.get("retransmitted_segments")])

    # Split connection.
    sim = Simulator()
    net, fixed, base, mobile = build(sim, loss=LOSS_RATE)
    out = split_transfer(sim, fixed, base, mobile)
    sim.run(until=900)
    assert len(out["received"]) == PAYLOAD
    rows.append(["split connection (I-TCP) [16]", f"{out['done_at']:.2f}",
                 sender_loss_events(out["fixed_conn"]),
                 out["fixed_conn"].stats.get("retransmitted_segments")])
    return rows


def run_handoff_regime() -> list[list]:
    def run(signal: bool):
        sim = Simulator()
        net, fixed, base, mobile = build(sim, loss=0.0)
        out = direct_transfer(sim, fixed, mobile)
        wireless = net.links[1]
        notifier = HandoffNotifier()

        def handoff(env):
            yield env.timeout(0.25)
            wireless.take_down()
            yield env.timeout(1.5)
            wireless.bring_up()
            if signal and "mobile_conn" in out:
                notifier.track(out["mobile_conn"])
                notifier.handoff_complete()

        sim.spawn(handoff(sim))
        sim.run(until=900)
        assert len(out["received"]) == PAYLOAD
        return out

    plain = run(signal=False)
    fast = run(signal=True)
    return [
        ["plain TCP through handoff", f"{plain['done_at']:.2f}",
         sender_loss_events(plain["fixed_conn"]),
         plain["fixed_conn"].stats.get("retransmitted_segments")],
        ["fast retransmit after handoff [2]", f"{fast['done_at']:.2f}",
         sender_loss_events(fast["fixed_conn"]),
         fast["fixed_conn"].stats.get("retransmitted_segments")],
    ]


def test_ablation_mobile_tcp(benchmark):
    loss_rows, handoff_rows = benchmark.pedantic(
        lambda: (run_loss_regime(), run_handoff_regime()),
        rounds=1, iterations=1)

    emit_table(
        f"S5.2 ablation A - {PAYLOAD} B to the mobile over "
        f"{LOSS_RATE * 100:.0f}% wireless loss",
        ["Variant", "Completion (s)", "Sender loss events",
         "Sender retransmissions"],
        loss_rows,
    )
    emit_table(
        "S5.2 ablation B - same transfer through a 1.5 s handoff blackout",
        ["Variant", "Completion (s)", "Sender loss events",
         "Sender retransmissions"],
        handoff_rows,
    )

    # Shape: each enhancement beats plain TCP in its regime.
    plain_time = float(loss_rows[0][1])
    snoop_time = float(loss_rows[1][1])
    split_time = float(loss_rows[2][1])
    assert snoop_time < plain_time
    assert split_time < plain_time * 1.5  # split adds relay latency but
    #                                       shields the wired sender:
    assert loss_rows[2][2] == 0  # zero wired-sender loss events (split)
    assert loss_rows[1][3] < loss_rows[0][3]  # fewer retransmissions (snoop)

    plain_handoff = float(handoff_rows[0][1])
    fast_handoff = float(handoff_rows[1][1])
    assert fast_handoff < plain_handoff  # signalling resumes before RTO
