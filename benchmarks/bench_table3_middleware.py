"""Table 3 — Two major kinds of mobile middleware (WAP vs i-mode).

Reproduces the paper's qualitative comparison and backs every row with
a measurement from the two implementations serving the same origin
page to the same device over the same bearer:

* Function: protocol translation (WAP transcodes HTML->WML->WMLC) vs
  complete service (i-mode adapts to cHTML over plain HTTP);
* Host language: delivered content types observed on the device;
* Major technology: gateway translation time vs TCP/IP keep-alive
  (session establishment counts);
* plus delivered byte counts and request latencies.
"""

import pytest

from repro.apps import CommerceApp
from repro.core import MCSystemBuilder, TransactionEngine
from repro.middleware import CHTML_CONTENT_TYPE, WMLC_CONTENT_TYPE

from helpers import emit, emit_table, run_transaction


def run_stack(middleware: str) -> dict:
    system = MCSystemBuilder(middleware=middleware,
                             bearer=("cellular", "GPRS")).build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 500_000)
    handle = system.add_station("Nokia 9290 Communicator")
    engine = TransactionEngine(system)

    # Two consecutive catalog fetches: the first pays any session setup.
    def catalog_twice(ctx):
        first = yield from ctx.get("/shop/catalog")
        yield from ctx.render(first)
        second = yield from ctx.get("/shop/catalog")
        yield from ctx.render(second)
        return {"content_type": first.content_type,
                "bytes": len(first.body),
                "origin_bytes": first.meta.get("origin_bytes", 0)}

    record = run_transaction(system, engine, handle, catalog_twice)
    assert record.ok, record.error

    gateway = system.model.component("mobile-middleware").implementation
    session = handle.session
    return {
        "record": record,
        "result": record.result,
        "session_establishments": session.stats.get(
            "session_establishments"),
        "requests": session.stats.get("requests"),
        "translations": gateway.stats.get("translations"),
        "adaptations": gateway.stats.get("adaptations"),
        "passthrough": gateway.stats.get("passthrough"),
    }


def run_both():
    return {name: run_stack(name) for name in ("WAP", "i-mode")}


def test_table3_middleware(benchmark):
    measured = benchmark.pedantic(run_both, rounds=1, iterations=1)
    wap, imode = measured["WAP"], measured["i-mode"]

    rows = [
        ["Developer", "WAP Forum", "NTT DoCoMo"],
        ["Function (paper)", "A protocol",
         "A complete mobile Internet service"],
        ["Host language (paper)", "WML", "cHTML"],
        ["Host language (measured)",
         wap["result"]["content_type"], imode["result"]["content_type"]],
        ["Major technology (paper)", "WAP Gateway",
         "TCP/IP modifications"],
        ["Gateway translations (measured)",
         str(wap["translations"]), str(imode["translations"] or 0)],
        ["Centre adaptations+passthrough (measured)",
         str(wap["adaptations"] + wap["passthrough"]),
         str(imode["adaptations"] + imode["passthrough"])],
        ["Sessions established / 2 requests",
         str(wap["session_establishments"]),
         str(imode["session_establishments"])],
        ["Delivered bytes (same page)",
         str(wap["result"]["bytes"]), str(imode["result"]["bytes"])],
        ["Origin bytes (HTML)",
         str(wap["result"]["origin_bytes"]), "n/a (proxied)"],
        ["2-fetch latency (measured)",
         f"{wap['record'].latency:.3f}s", f"{imode['record'].latency:.3f}s"],
    ]
    emit_table("Table 3 - Two major kinds of mobile middleware "
               "(paper rows + measured)",
               ["", "WAP", "i-mode"], rows)

    # Host languages are what the paper says they are.
    assert wap["result"]["content_type"] == WMLC_CONTENT_TYPE
    assert imode["result"]["content_type"] == CHTML_CONTENT_TYPE
    # WAP translates at the gateway; i-mode serves cHTML (adapting or
    # passing through content that is already compact).
    assert wap["translations"] == 2
    assert imode["adaptations"] + imode["passthrough"] == 2
    assert imode["translations"] == 0
    # Both are always-on after the first request in our model; both
    # compress relative to the origin HTML.
    assert wap["result"]["bytes"] < wap["result"]["origin_bytes"]
    # The binary-encoded WML deck is smaller than the cHTML page.
    assert wap["result"]["bytes"] < imode["result"]["bytes"]
