"""Figure 2 — A mobile commerce system structure.

Builds the six-component MC system exactly as the figure's example
implementation describes it — mobile handheld device, WAP middleware,
wireless LAN, wired LAN/WAN, host computers — validates the topology
against the figure, renders it, and drives one purchase through every
component, verifying each was actually touched.
"""

import pytest

from repro.apps import CommerceApp
from repro.core import (
    ComponentKind,
    MCSystemBuilder,
    TransactionEngine,
    render_structure,
)
from repro.core.model import MC_FLOW_CHAIN
from repro.core.render import render_flow_chain

from helpers import emit, run_transaction


def build_and_run():
    # The figure's implementation column: handheld device + WAP +
    # wireless LAN + wired LAN/WAN + host computers.
    system = MCSystemBuilder(middleware="WAP",
                             bearer=("wlan", "802.11b")).build()
    shop = CommerceApp()
    system.mount_application(shop)
    system.host.payment.open_account("ann", 100_000)
    handle = system.add_station("Compaq iPAQ H3870")
    engine = TransactionEngine(system)
    record = run_transaction(system, engine, handle,
                             shop.browse_and_buy(account="ann"))
    return system, handle, record


def test_fig2_mc_structure(benchmark):
    system, handle, record = benchmark.pedantic(build_and_run, rounds=1,
                                                iterations=1)
    report = system.model.validate_mc()

    emit("")
    emit(render_structure(
        system.model,
        title="Figure 2 - An MC system structure (as built: "
              "iPAQ + WAP + wireless LAN + wired + host)"))
    emit("")
    emit("User request path: "
         + render_flow_chain(system.model, MC_FLOW_CHAIN))
    emit(f"Validation against Figure 2: "
         f"{'OK' if report.valid else report.violations}")
    emit(f"Mobile purchase through the structure: "
         f"{'OK' if record.ok else record.error} "
         f"({record.requests} requests, {record.latency:.3f}s, "
         f"{record.render_seconds * 1000:.1f} ms device render)")
    emit("")

    assert report.valid, report.violations
    assert record.ok, record.error

    # Every one of the six components exists and was exercised:
    # (i) applications — the shop handled requests;
    programs = system.model.component("application-programs").implementation
    shop_program = programs.resolve("/shop/buy")
    assert shop_program is not None
    assert shop_program.stats.get("invocations") >= 1
    # (ii) mobile stations — the device rendered pages;
    assert record.render_seconds > 0
    assert handle.browser.pages_rendered == 3
    # (iii) mobile middleware — the gateway translated HTML to WML;
    gateway = system.model.component("mobile-middleware").implementation
    assert gateway.stats.get("translations") >= 1
    # (iv) wireless networks — the radio link carried the frames;
    radio_link = handle.attachment.link
    assert radio_link.stats.get("delivered") > 0
    # (v) wired networks — packets were forwarded through the core;
    core = system.network.node("internet-core")
    assert core.stats.get("forwarded") > 0
    # (vi) host computers — web server requests hit the database server.
    assert system.host.web_server.stats.get("requests") == 3
    assert system.host.db_server.stats.get("queries") >= 3
